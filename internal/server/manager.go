package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"sdr/internal/campaign"
	"sdr/internal/obs"
)

// Config sizes the job manager.
type Config struct {
	// Workers is the number of jobs executed concurrently; each job fans its
	// own trials out over Parallel workers of the bench pool.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs; a full
	// queue is backpressure (Submit returns ErrQueueFull → HTTP 429).
	QueueDepth int
	// Parallel is the per-job trial parallelism (campaign.Options.Parallel);
	// 0 means one per CPU. Streams are identical for every value.
	Parallel int
	// ResultCache bounds the number of finished jobs whose record streams
	// (and statuses) are retained, LRU-evicted; completed jobs serve
	// duplicate submissions from this cache.
	ResultCache int
	// MemoCap bounds each cell's transition-memo table (0 = sim default).
	MemoCap int
	// Registry receives the manager's metric families (job counters, queue
	// gauges, the job-duration histogram, the records counter); nil creates
	// a private registry. The HTTP layer serves it at GET /metrics, and
	// GET /v1/stats reads the same instruments.
	Registry *obs.Registry
	// Logger receives structured job-lifecycle logs (submit, dedup hit,
	// finish — each carrying the job's id and content hash); nil disables
	// them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	if c.ResultCache <= 0 {
		c.ResultCache = 64
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// jobDurationBuckets are the upper bounds (milliseconds) of the job run
// duration histogram: 0.5ms to ~16s, exponential.
var jobDurationBuckets = obs.ExponentialBuckets(0.5, 2, 16)

// ErrQueueFull reports a submission rejected because the job queue is at
// capacity — the backpressure signal (HTTP 429 + Retry-After).
var ErrQueueFull = errors.New("server: job queue full")

// ErrDraining reports a submission rejected because the manager is shutting
// down (HTTP 503).
var ErrDraining = errors.New("server: draining, not accepting jobs")

// Manager owns the job lifecycle: a bounded queue feeding a bounded worker
// pool, content-hash dedup of identical (spec, seed) submissions —
// concurrent duplicates attach to the in-flight job, completed ones are
// served from a bounded LRU of result streams — and graceful drain that
// stops every in-flight campaign at a record boundary.
//
// All throughput counters live in the shared obs.Registry, so GET /v1/stats
// and GET /metrics report from one source.
type Manager struct {
	cfg      Config
	logger   *slog.Logger
	queue    chan *Job
	drainCtx context.Context
	drainAll context.CancelFunc
	wg       sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job          // every retained job by id
	byHash   map[string]*Job          // dedup index: in-flight + completed-done jobs
	lru      *list.List               // finished jobs, most recently used first
	lruIndex map[string]*list.Element // job id → lru element
	draining bool
	seq      int

	memoRateSum float64
	memoRateN   int

	accepted      *obs.Counter // newly created jobs
	done          *obs.Counter
	failed        *obs.Counter
	interrupted   *obs.Counter
	rejectedFull  *obs.Counter // backpressured submissions (429)
	dedupInFlight *obs.Counter
	dedupCached   *obs.Counter
	recordsTotal  *obs.Counter // campaign record lines streamed by all jobs
	running       *obs.Gauge
	jobDuration   *obs.Histogram // run durations, milliseconds

	// testJobStart, when set, is called by a worker right after claiming a
	// job and before executing it — the deterministic gate the lifecycle
	// tests block workers on.
	testJobStart func(*Job)
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		logger:   cfg.Logger,
		queue:    make(chan *Job, cfg.QueueDepth),
		drainCtx: ctx,
		drainAll: cancel,
		jobs:     make(map[string]*Job),
		byHash:   make(map[string]*Job),
		lru:      list.New(),
		lruIndex: make(map[string]*list.Element),
	}
	reg := cfg.Registry
	m.accepted = reg.Counter("sdrd_jobs_accepted_total", "Newly created jobs (deduplicated submissions excluded).")
	m.done = reg.Counter("sdrd_jobs_finished_total", "Finished jobs by terminal state.", "state", "done")
	m.failed = reg.Counter("sdrd_jobs_finished_total", "Finished jobs by terminal state.", "state", "failed")
	m.interrupted = reg.Counter("sdrd_jobs_finished_total", "Finished jobs by terminal state.", "state", "interrupted")
	m.rejectedFull = reg.Counter("sdrd_jobs_rejected_total", "Submissions rejected by queue backpressure.")
	m.dedupInFlight = reg.Counter("sdrd_dedup_hits_total", "Submissions answered by an existing job.", "kind", "in_flight")
	m.dedupCached = reg.Counter("sdrd_dedup_hits_total", "Submissions answered by an existing job.", "kind", "cached")
	m.recordsTotal = reg.Counter("sdrd_campaign_records_total", "Campaign record lines produced by all jobs (headers included).")
	m.running = reg.Gauge("sdrd_jobs_running", "Jobs currently executing.")
	m.jobDuration = reg.Histogram("sdrd_job_duration_ms", "Run duration of finished jobs in milliseconds.", jobDurationBuckets)
	reg.GaugeFunc("sdrd_queue_depth", "Accepted-but-not-started jobs.", func() float64 { return float64(len(m.queue)) })
	reg.GaugeFunc("sdrd_queue_capacity", "Job queue capacity.", func() float64 { return float64(cfg.QueueDepth) })
	reg.GaugeFunc("sdrd_result_cache_jobs", "Finished jobs retained in the result LRU.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.lru.Len())
	})
	reg.GaugeFunc("sdrd_memo_hit_rate_mean", "Mean memo_hit_rate over completed cells that recorded it.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.memoRateN == 0 {
			return 0
		}
		return m.memoRateSum / float64(m.memoRateN)
	})
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the metric registry the manager records into.
func (m *Manager) Registry() *obs.Registry { return m.cfg.Registry }

// Submit normalizes and validates the request, then either attaches it to
// an existing job with the same content hash (dedup — the request performs
// no work) or enqueues a new job. It reports the job and whether it was
// newly created. Errors: validation errors, ErrQueueFull, ErrDraining.
func (m *Manager) Submit(req JobRequest) (*Job, bool, error) {
	spec, err := req.Normalize()
	if err != nil {
		return nil, false, err
	}
	hash := specHash(spec)
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	if j := m.byHash[hash]; j != nil {
		j.addDedupHit()
		kind := "in_flight"
		if el, ok := m.lruIndex[j.ID]; ok {
			m.lru.MoveToFront(el)
			m.dedupCached.Inc()
			kind = "cached"
		} else {
			m.dedupInFlight.Inc()
		}
		m.mu.Unlock()
		if m.logger != nil {
			m.logger.Info("job dedup hit", "job", j.ID, "hash", shortHash(hash), "kind", kind)
		}
		return j, false, nil
	}
	m.seq++
	job := newJob(fmt.Sprintf("j%06d", m.seq), hash, spec, time.Now(), m.recordsTotal)
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		m.rejectedFull.Inc()
		if m.logger != nil {
			m.logger.Warn("job rejected: queue full", "hash", shortHash(hash), "capacity", m.cfg.QueueDepth)
		}
		return nil, false, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.byHash[hash] = job
	m.mu.Unlock()
	m.accepted.Inc()
	if m.logger != nil {
		m.logger.Info("job accepted", "job", job.ID, "hash", shortHash(hash), "spec", spec.ID)
	}
	return job, true, nil
}

// Get returns the job with the given id, if it is still retained.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel aborts the job at its next record boundary. It reports whether the
// job existed and was still cancellable.
func (m *Manager) Cancel(id string) (bool, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false, false
	}
	return true, j.Cancel(time.Now())
}

// Drain stops accepting submissions, cancels every in-flight campaign (they
// stop at their next record boundary — the same checkpoint semantics the
// CLI's SIGINT handling uses), waits for the workers to exit, and marks
// still-queued jobs interrupted. Safe to call more than once.
func (m *Manager) Drain() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	m.drainAll()
	m.wg.Wait()
	if already {
		return
	}
	for {
		select {
		case job := <-m.queue:
			job.Cancel(time.Now())
			job.log.finish()
			m.finalize(job, StateInterrupted, nil, 0)
		default:
			return
		}
	}
}

// worker executes queued jobs until drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case job := <-m.queue:
			m.process(job)
		case <-m.drainCtx.Done():
			return
		}
	}
}

// process runs one job through the campaign stream core, its cancellation
// context parented on the drain context so both a per-job DELETE and a
// server drain stop it at a record boundary.
func (m *Manager) process(job *Job) {
	jctx, cancel := context.WithCancel(m.drainCtx)
	defer cancel()
	if !job.claimRun(cancel, time.Now()) {
		// Cancelled while queued: never started, nothing recorded.
		job.log.finish()
		m.finalize(job, StateInterrupted, nil, 0)
		return
	}
	m.running.Add(1)
	m.mu.Lock()
	hook := m.testJobStart
	m.mu.Unlock()
	if hook != nil {
		hook(job)
	}
	if m.logger != nil {
		m.logger.Info("job started", "job", job.ID, "hash", shortHash(job.Hash))
	}
	start := time.Now()
	res, err := campaign.RunSink(job.Spec, job.log, campaign.Options{
		Parallel: m.cfg.Parallel,
		MemoCap:  m.cfg.MemoCap,
		Context:  jctx,
	})
	elapsed := time.Since(start)
	job.log.finish()
	switch {
	case errors.Is(err, campaign.ErrInterrupted):
		job.finishAs(StateInterrupted, err.Error(), 0, time.Now())
		m.finalize(job, StateInterrupted, nil, elapsed)
	case err != nil:
		job.finishAs(StateFailed, err.Error(), 0, time.Now())
		m.finalize(job, StateFailed, nil, elapsed)
	default:
		violations := 0
		for _, c := range res.Cells {
			if !c.Skipped && !c.OK {
				violations++
			}
		}
		job.finishAs(StateDone, "", violations, time.Now())
		m.finalize(job, StateDone, res, elapsed)
	}
}

// finalize moves a finished job into the bounded result cache and updates
// the counters. Only done jobs stay in the dedup index: an interrupted or
// failed job's stream is not the full answer, so an identical resubmission
// runs fresh.
func (m *Manager) finalize(job *Job, state JobState, res *campaign.Result, elapsed time.Duration) {
	switch state {
	case StateDone:
		m.done.Inc()
	case StateFailed:
		m.failed.Inc()
	case StateInterrupted:
		m.interrupted.Inc()
	}
	if elapsed > 0 {
		m.running.Add(-1)
		m.jobDuration.Observe(float64(elapsed.Nanoseconds()) / 1e6)
	}
	if m.logger != nil {
		m.logger.Info("job finished",
			"job", job.ID, "hash", shortHash(job.Hash), "state", string(state),
			"duration_ms", float64(elapsed.Nanoseconds())/1e6, "records", job.log.len())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if state == StateFailed || state == StateInterrupted {
		delete(m.byHash, job.Hash)
	}
	if res != nil {
		for _, c := range res.Cells {
			if agg, ok := c.Metrics[campaign.MetricMemoHitRate]; ok {
				m.memoRateSum += agg.Mean
				m.memoRateN++
			}
		}
	}
	m.lruIndex[job.ID] = m.lru.PushFront(job)
	for m.lru.Len() > m.cfg.ResultCache {
		el := m.lru.Back()
		old := m.lru.Remove(el).(*Job)
		delete(m.lruIndex, old.ID)
		delete(m.jobs, old.ID)
		if cur := m.byHash[old.Hash]; cur == old {
			delete(m.byHash, old.Hash)
		}
	}
}

// shortHash abbreviates a content hash for log lines, matching the 12-char
// prefix deriveID embeds in job spec IDs.
func shortHash(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// LatencySummary summarises the job run duration histogram. The percentiles
// are bucket-interpolated estimates (obs.Histogram.Quantile) over every
// finished job — unlike the fixed 512-sample ring this replaces, the window
// never wraps, so the count keeps growing and no sample is overwritten.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Stats is the GET /v1/stats snapshot. Every counter is read from the same
// obs.Registry instruments GET /metrics exposes.
type Stats struct {
	Workers       int  `json:"workers"`
	Draining      bool `json:"draining,omitempty"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	// JobsAccepted counts newly created jobs (deduplicated submissions do
	// not create jobs and are counted under the dedup fields).
	JobsAccepted    int `json:"jobs_accepted"`
	JobsRunning     int `json:"jobs_running"`
	JobsDone        int `json:"jobs_done"`
	JobsFailed      int `json:"jobs_failed"`
	JobsInterrupted int `json:"jobs_interrupted"`
	// DedupHits = DedupHitsInFlight (attached to a queued/running job) +
	// DedupHitsCached (served from the completed-job LRU).
	DedupHits         int `json:"dedup_hits"`
	DedupHitsInFlight int `json:"dedup_hits_in_flight"`
	DedupHitsCached   int `json:"dedup_hits_cached"`
	CachedJobs        int `json:"cached_jobs"`
	// MemoHitRateMean averages the memo_hit_rate metric over every completed
	// cell that recorded it (see internal/sim memoization).
	MemoHitRateMean float64 `json:"memo_hit_rate_mean"`
	// JobLatency summarises run durations of finished jobs.
	JobLatency LatencySummary `json:"job_latency"`
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Workers:           m.cfg.Workers,
		Draining:          m.draining,
		QueueDepth:        len(m.queue),
		QueueCapacity:     m.cfg.QueueDepth,
		CachedJobs:        m.lru.Len(),
		JobsAccepted:      int(m.accepted.Value()),
		JobsRunning:       int(m.running.Value()),
		JobsDone:          int(m.done.Value()),
		JobsFailed:        int(m.failed.Value()),
		JobsInterrupted:   int(m.interrupted.Value()),
		DedupHitsInFlight: int(m.dedupInFlight.Value()),
		DedupHitsCached:   int(m.dedupCached.Value()),
	}
	s.DedupHits = s.DedupHitsInFlight + s.DedupHitsCached
	if m.memoRateN > 0 {
		s.MemoHitRateMean = m.memoRateSum / float64(m.memoRateN)
	}
	m.mu.Unlock()
	if n := m.jobDuration.Count(); n > 0 {
		s.JobLatency = LatencySummary{
			Count:  int(n),
			MeanMS: m.jobDuration.Mean(),
			P50MS:  m.jobDuration.Quantile(0.50),
			P95MS:  m.jobDuration.Quantile(0.95),
			P99MS:  m.jobDuration.Quantile(0.99),
		}
	}
	return s
}
