// Package server implements the sdrd simulation service: an HTTP+JSON API
// over the campaign stream core with deduplicated, backpressured job
// execution.
//
// Endpoints (all under /v1, plus the observability pair):
//
//	GET    /v1/registry          registered algorithms/topologies/daemons/faults/churns
//	GET    /v1/version           environment fingerprint (same helper as campaign baselines)
//	GET    /v1/stats             queue depth, dedup and memo hit counters, job latency percentiles
//	POST   /v1/jobs              submit a spec, sweep or campaign job
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel at the next record boundary
//	GET    /v1/jobs/{id}/records stream the job's campaign JSONL records (?from= resumes)
//	GET    /metrics              Prometheus text-format exposition of the shared obs registry
//	GET    /debug/pprof/*        runtime profiles, mounted only by EnablePprof (sdrd -pprof)
//
// The record stream for a given spec and seed is byte-identical to the file
// `sdrbench -campaign` writes offline: both funnel through campaign.RunSink
// and campaign.MarshalLine.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"sdr/internal/campaign"
	"sdr/internal/obs"
	"sdr/internal/scenario"
)

// maxRequestBytes bounds a POST /v1/jobs body.
const maxRequestBytes = 1 << 20

// Server routes the sdrd HTTP API onto a Manager. Every /v1 route is
// wrapped with request instrumentation: a per-route latency histogram and a
// per-route-and-status counter in the manager's registry, plus a structured
// request log line when the manager has a logger.
type Server struct {
	m      *Manager
	mux    *http.ServeMux
	logger *slog.Logger
}

// New builds the HTTP API over the given manager.
func New(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux(), logger: m.logger}
	s.handle("GET /v1/registry", s.handleRegistry)
	s.handle("GET /v1/version", s.handleVersion)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("POST /v1/jobs", s.handleSubmit)
	s.handle("GET /v1/jobs/{id}", s.handleStatus)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancel)
	s.handle("GET /v1/jobs/{id}/records", s.handleRecords)
	// The scrape endpoint itself stays uninstrumented so the request series
	// measure API traffic, not the scraper.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ (sdrd's
// -pprof flag). Off by default: the profiling endpoints expose stacks and
// heap contents, so operators opt in explicitly.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handle registers an instrumented route: the handler runs behind a
// status-capturing writer, and on return the request is recorded into the
// route's latency histogram, the route×status counter, and the request log.
// The route label is the full mux pattern, so path parameters ({id}) do not
// explode the series cardinality.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	reg := s.m.Registry()
	hist := reg.Histogram("sdrd_http_request_duration_seconds",
		"HTTP request latency by route.", obs.DefBuckets, "route", pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		hist.Observe(elapsed.Seconds())
		reg.Counter("sdrd_http_requests_total", "HTTP requests by route and status.",
			"route", pattern, "code", strconv.Itoa(sw.code)).Inc()
		if s.logger != nil {
			s.logger.Info("request",
				"method", r.Method, "path", r.URL.Path, "status", sw.code,
				"duration_ms", float64(elapsed.Nanoseconds())/1e6)
		}
	})
}

// statusWriter captures the response status for instrumentation. It keeps
// forwarding Flush so the live record stream of handleRecords still flushes
// per line through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code        int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.code = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.m.Registry().WritePrometheus(w)
}

// SubmitResponse is the body of a successful POST /v1/jobs: the job status
// plus whether the submission was answered by an existing job.
type SubmitResponse struct {
	JobStatus
	Deduped    bool   `json:"deduped"`
	RecordsURL string `json:"records_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	job, created, err := s.m.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{
		JobStatus:  job.Status(),
		Deduped:    !created,
		RecordsURL: "/v1/jobs/" + job.ID + "/records",
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	found, cancelled := s.m.Cancel(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if !cancelled {
		writeError(w, http.StatusConflict, errors.New("job already finished"))
		return
	}
	job, _ := s.m.Get(r.PathValue("id"))
	writeJSON(w, http.StatusOK, job.Status())
}

// handleRecords streams the job's JSONL record log from offset ?from=
// (default 0, line-indexed, header line included), following live output
// until the job finishes or the client goes away. The bytes are exactly the
// offline campaign file's: header line first, then one record per line.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from offset %q", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		lines, closed, change := job.log.next(from)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
		}
		from += len(lines)
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// The response body is WriteRegistryJSON's bytes verbatim — the same
	// encoder behind `sdrsim -list -json` and `sdrbench -list -json`.
	_ = scenario.WriteRegistryJSON(w)
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, campaign.Fingerprint())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
