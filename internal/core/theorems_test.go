package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdr/internal/checker"
	"sdr/internal/graph"
	"sdr/internal/sim"
)

// These tests validate the paper's main theorems on executions of the
// composition testInner ∘ SDR: convergence and closure (self-stabilization),
// the attractor chain P1 ⊇ P2 ⊇ P3 ⊇ P4, and the round bound of Corollary 5.

// aliveRootSet returns the alive-root set of a configuration as a map.
func aliveRootSet(inner Resettable, net *sim.Network, c *sim.Configuration) map[int]bool {
	set := make(map[int]bool)
	for _, u := range AliveRoots(inner, net, c) {
		set[u] = true
	}
	return set
}

func TestExhaustiveConvergenceOnTinyNetworks(t *testing.T) {
	// Exhaustive verification of convergence + closure on tiny networks:
	// every configuration reachable from every possible starting
	// configuration, under every daemon choice, eventually reaches the
	// normal set and never leaves it. This is the strongest check short of
	// re-proving the theorems.
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	topologies := map[string]*graph.Graph{
		"path2": graph.Path(2),
		"path3": graph.Path(3),
		"ring3": graph.Ring(3),
	}
	for name, g := range topologies {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			inner := newTestInner(1) // values {0,1}: small but non-trivial
			comp := Compose(inner)
			net := sim.NewNetwork(g)

			// All configurations over the enumerated state space are starting
			// points.
			perProcess := make([][]sim.State, net.N())
			for u := 0; u < net.N(); u++ {
				perProcess[u] = comp.EnumerateStates(u, net)
			}
			var starts []*sim.Configuration
			var build func(u int, acc []sim.State)
			build = func(u int, acc []sim.State) {
				if u == net.N() {
					starts = append(starts, sim.NewConfiguration(acc))
					return
				}
				for _, s := range perProcess[u] {
					build(u+1, append(append([]sim.State(nil), acc...), s.Clone()))
				}
			}
			build(0, nil)

			report, err := checker.Explore(net, comp, starts, checker.ExploreOptions{
				MaxConfigurations: 400_000,
				Legitimate:        NormalPredicate(inner, net),
			})
			if err != nil {
				t.Fatalf("exploration failed: %v", err)
			}
			if !report.Complete {
				t.Fatalf("exploration incomplete (%d configurations)", report.Configurations)
			}
			if report.LegitimateConfigurations == 0 {
				t.Fatal("no legitimate configuration is reachable")
			}
		})
	}
}

func TestNormalSetIsClosed(t *testing.T) {
	// Closure half of self-stabilization (Corollary 5): once the composition
	// is in a normal configuration it stays in normal configurations.
	inner := newTestInner(4)
	comp := Compose(inner)
	g := graph.Ring(5)
	net := sim.NewNetwork(g)
	normal := NormalPredicate(inner, net)

	start := sim.InitialConfiguration(comp, net)
	if !normal(start) {
		t.Fatal("γ_init must be normal")
	}
	for _, df := range sim.StandardDaemonFactories() {
		if err := checker.CheckClosure(net, comp, df.New(3), start, normal, 5_000); err != nil {
			t.Errorf("normal set not closed under daemon %s: %v", df.Name, err)
		}
	}
}

func TestNoAliveRootCreationInvariant(t *testing.T) {
	// Theorem 3, checked as a step invariant over sampled executions from
	// random configurations: the alive-root set never gains a member.
	inner := newTestInner(2)
	comp := Compose(inner)
	g := graph.RandomConnected(7, 0.35, rand.New(rand.NewSource(17)))
	net := sim.NewNetwork(g)
	states := comp.EnumerateStates(0, net)
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 25; trial++ {
		cfgStates := make([]sim.State, net.N())
		for u := range cfgStates {
			cfgStates[u] = states[rng.Intn(len(states))].Clone()
		}
		start := sim.NewConfiguration(cfgStates)
		prev := aliveRootSet(inner, net, start)
		violated := false
		hook := func(info sim.StepInfo) {
			cur := aliveRootSet(inner, net, info.After)
			for u := range cur {
				if !prev[u] {
					violated = true
				}
			}
			prev = cur
		}
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(int64(trial*7))), 0.4)
		eng := sim.NewEngine(net, comp, daemon)
		eng.Run(start, sim.WithMaxSteps(20_000), sim.WithStepHook(hook))
		if violated {
			t.Fatalf("trial %d: an alive root was created during the execution", trial)
		}
	}
}

func TestConvergenceWithinRoundBound(t *testing.T) {
	// Corollary 5: from any configuration, a normal configuration is reached
	// within 3n rounds. Sampled over random configurations, topologies and
	// daemons.
	inner := newTestInner(3)
	topologies := []*graph.Graph{
		graph.Ring(8),
		graph.Path(9),
		graph.Star(7),
		graph.RandomConnected(10, 0.3, rand.New(rand.NewSource(3))),
	}
	for _, g := range topologies {
		comp := Compose(inner)
		net := sim.NewNetwork(g)
		states := comp.EnumerateStates(0, net)
		rng := rand.New(rand.NewSource(int64(g.N())))
		for _, df := range sim.StandardDaemonFactories() {
			if df.Name == "greedy-adversarial" && g.N() > 8 {
				continue // quadratic lookahead; keep the test fast
			}
			cfgStates := make([]sim.State, net.N())
			for u := range cfgStates {
				cfgStates[u] = states[rng.Intn(len(states))].Clone()
			}
			start := sim.NewConfiguration(cfgStates)
			eng := sim.NewEngine(net, comp, df.New(int64(g.N())))
			res := eng.Run(start,
				sim.WithMaxSteps(200_000),
				sim.WithLegitimate(NormalPredicate(inner, net)),
				sim.WithStopWhenLegitimate(),
			)
			if !res.LegitimateReached {
				t.Fatalf("daemon %s on n=%d: no normal configuration reached", df.Name, g.N())
			}
			if res.StabilizationRounds > MaxResetRounds(net.N()) {
				t.Errorf("daemon %s on n=%d: stabilization took %d rounds, bound is %d",
					df.Name, g.N(), res.StabilizationRounds, MaxResetRounds(net.N()))
			}
		}
	}
}

func TestQuickConvergenceFromRandomConfigurations(t *testing.T) {
	// Property-based convergence: for every randomly drawn configuration and
	// daemon seed, the composition reaches a normal configuration within the
	// proven round bound.
	inner := newTestInner(2)
	comp := Compose(inner)
	g := graph.Ring(6)
	net := sim.NewNetwork(g)
	states := comp.EnumerateStates(0, net)

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfgStates := make([]sim.State, net.N())
		for u := range cfgStates {
			cfgStates[u] = states[rng.Intn(len(states))].Clone()
		}
		start := sim.NewConfiguration(cfgStates)
		daemon := sim.NewDistributedRandomDaemon(rng, 0.5)
		res := sim.NewEngine(net, comp, daemon).Run(start,
			sim.WithMaxSteps(100_000),
			sim.WithLegitimate(NormalPredicate(inner, net)),
			sim.WithStopWhenLegitimate(),
		)
		return res.LegitimateReached && res.StabilizationRounds <= MaxResetRounds(net.N())
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompositionIsSilentForTerminatingInner(t *testing.T) {
	// The test inner algorithm terminates (values capped); composed with SDR
	// from any sampled configuration, the whole composition therefore reaches
	// a terminal configuration — silence in the sense of Dolev-Gouda-Schneider
	// for static specifications.
	inner := newTestInner(2)
	comp := Compose(inner)
	g := graph.Path(6)
	net := sim.NewNetwork(g)
	states := comp.EnumerateStates(0, net)
	rng := rand.New(rand.NewSource(31))

	for trial := 0; trial < 20; trial++ {
		cfgStates := make([]sim.State, net.N())
		for u := range cfgStates {
			cfgStates[u] = states[rng.Intn(len(states))].Clone()
		}
		daemon := sim.NewCentralRandomDaemon(rand.New(rand.NewSource(int64(trial))))
		res := sim.NewEngine(net, comp, daemon).Run(sim.NewConfiguration(cfgStates), sim.WithMaxSteps(100_000))
		if !res.Terminated {
			t.Fatalf("trial %d: composition did not terminate", trial)
		}
		if !Normal(inner, net, res.Final) {
			t.Fatalf("trial %d: terminal configuration %s is not normal", trial, res.Final)
		}
	}
}
