package core

import "sdr/internal/sim"

// The predicates of Algorithm 1, evaluated at a process through its view
// over composed states. Each function mirrors one predicate of the paper.

// PClean is P_Clean(u) ≡ ∀v ∈ N[u], st_v = C: no member of the closed
// neighbourhood of u is involved in a reset.
func PClean(v sim.View) bool {
	if SDRPart(v.Self()).St != StatusC {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		if SDRPart(v.Neighbor(i)).St != StatusC {
			return false
		}
	}
	return true
}

// PICorrect is P_ICorrect(u): the input algorithm's local-consistency
// predicate, evaluated on the inner states of the closed neighbourhood.
func PICorrect(inner Resettable, v sim.View) bool {
	return inner.ICorrect(NewInnerView(v))
}

// PReset is P_reset(u): whether u's inner state is the pre-defined reset
// state of u.
func PReset(inner Resettable, v sim.View) bool {
	return inner.IsReset(v.Process(), v.Network(), InnerPart(v.Self()))
}

// pResetNeighbor evaluates P_reset at the i-th neighbour of the view.
func pResetNeighbor(inner Resettable, v sim.View, i int) bool {
	net := v.Network()
	w := net.Neighbor(v.Process(), i)
	return inner.IsReset(w, net, InnerPart(v.Neighbor(i)))
}

// PCorrect is P_Correct(u) ≡ st_u = C ⇒ P_ICorrect(u).
func PCorrect(inner Resettable, v sim.View) bool {
	if SDRPart(v.Self()).St != StatusC {
		return true
	}
	return PICorrect(inner, v)
}

// PR1 is P_R1(u) ≡ st_u = C ∧ ¬P_reset(u) ∧ (∃v ∈ N(u), st_v = RF): u looks
// clean but is not in a reset state while a neighbour is already feeding a
// reset back — an SDR-level inconsistency.
func PR1(inner Resettable, v sim.View) bool {
	if SDRPart(v.Self()).St != StatusC || PReset(inner, v) {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		if SDRPart(v.Neighbor(i)).St == StatusRF {
			return true
		}
	}
	return false
}

// PRB is P_RB(u) ≡ st_u = C ∧ (∃v ∈ N(u), st_v = RB): u can join the
// broadcast phase of a neighbouring reset.
func PRB(v sim.View) bool {
	if SDRPart(v.Self()).St != StatusC {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		if SDRPart(v.Neighbor(i)).St == StatusRB {
			return true
		}
	}
	return false
}

// PRF is P_RF(u) ≡ st_u = RB ∧ P_reset(u) ∧
// (∀v ∈ N(u), (st_v = RB ∧ d_v ≤ d_u) ∨ (st_v = RF ∧ P_reset(v))): u may
// switch from the broadcast phase to the feedback phase.
func PRF(inner Resettable, v sim.View) bool {
	self := SDRPart(v.Self())
	if self.St != StatusRB || !PReset(inner, v) {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		nb := SDRPart(v.Neighbor(i))
		okRB := nb.St == StatusRB && nb.D <= self.D
		okRF := nb.St == StatusRF && pResetNeighbor(inner, v, i)
		if !okRB && !okRF {
			return false
		}
	}
	return true
}

// PC is P_C(u) ≡ st_u = RF ∧
// (∀v ∈ N[u], P_reset(v) ∧ ((st_v = RF ∧ d_v ≥ d_u) ∨ st_v = C)): u may
// terminate its participation in the reset and return to status C.
func PC(inner Resettable, v sim.View) bool {
	self := SDRPart(v.Self())
	if self.St != StatusRF {
		return false
	}
	// v = u itself: P_reset(u) must hold (the st/d conditions hold trivially).
	if !PReset(inner, v) {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		nb := SDRPart(v.Neighbor(i))
		if !pResetNeighbor(inner, v, i) {
			return false
		}
		okRF := nb.St == StatusRF && nb.D >= self.D
		okC := nb.St == StatusC
		if !okRF && !okC {
			return false
		}
	}
	return true
}

// PR2 is P_R2(u) ≡ st_u ≠ C ∧ ¬P_reset(u): u claims to be resetting but its
// inner state is not the reset state — an SDR-level inconsistency.
func PR2(inner Resettable, v sim.View) bool {
	return SDRPart(v.Self()).St != StatusC && !PReset(inner, v)
}

// PUp is P_Up(u) ≡ ¬P_RB(u) ∧ (P_R1(u) ∨ P_R2(u) ∨ ¬P_Correct(u)): u must
// initiate its own reset (no neighbouring broadcast to join, and either an
// SDR-level or an I-level inconsistency is visible locally).
func PUp(inner Resettable, v sim.View) bool {
	if PRB(v) {
		return false
	}
	return PR1(inner, v) || PR2(inner, v) || !PCorrect(inner, v)
}

// PRoot is P_root(u) ≡ st_u = RB ∧ (∀v ∈ N(u), st_v = RB ⇒ d_v ≥ d_u):
// u is a local minimum of the distance values among broadcast processes.
func PRoot(v sim.View) bool {
	self := SDRPart(v.Self())
	if self.St != StatusRB {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		nb := SDRPart(v.Neighbor(i))
		if nb.St == StatusRB && nb.D < self.D {
			return false
		}
	}
	return true
}

// IsAliveRoot reports whether u is an alive root: P_Up(u) ∨ P_root(u)
// (Definition 1). Theorem 3 shows no alive root is ever created, which is
// the key to the move-complexity analysis.
func IsAliveRoot(inner Resettable, v sim.View) bool {
	return PUp(inner, v) || PRoot(v)
}

// IsDeadRoot reports whether u is a dead root:
// st_u = RF ∧ (∀v ∈ N(u), st_v ≠ C ⇒ d_v ≥ d_u) (Definition 1).
func IsDeadRoot(v sim.View) bool {
	self := SDRPart(v.Self())
	if self.St != StatusRF {
		return false
	}
	for i := 0; i < v.Degree(); i++ {
		nb := SDRPart(v.Neighbor(i))
		if nb.St != StatusC && nb.D < self.D {
			return false
		}
	}
	return true
}

// Normal reports whether the configuration is a normal configuration
// (Definition 6 / Corollary 5): P_Clean(u) ∧ P_ICorrect(u) holds at every
// process. Normal configurations are exactly the terminal configurations of
// SDR (Theorem 1) and form the legitimate set of the composition.
func Normal(inner Resettable, net *sim.Network, c *sim.Configuration) bool {
	for u := 0; u < net.N(); u++ {
		v := net.View(c, u)
		if !PClean(v) || !PICorrect(inner, v) {
			return false
		}
	}
	return true
}

// NormalPredicate returns Normal as a configuration predicate bound to the
// inner algorithm and network, suitable for sim.WithLegitimate.
func NormalPredicate(inner Resettable, net *sim.Network) sim.Predicate {
	return func(c *sim.Configuration) bool { return Normal(inner, net, c) }
}

// AliveRoots returns the sorted list of alive roots in the configuration.
func AliveRoots(inner Resettable, net *sim.Network, c *sim.Configuration) []int {
	var roots []int
	for u := 0; u < net.N(); u++ {
		if IsAliveRoot(inner, net.View(c, u)) {
			roots = append(roots, u)
		}
	}
	return roots
}

// DeadRoots returns the sorted list of dead roots in the configuration.
func DeadRoots(net *sim.Network, c *sim.Configuration) []int {
	var roots []int
	for u := 0; u < net.N(); u++ {
		if IsDeadRoot(net.View(c, u)) {
			roots = append(roots, u)
		}
	}
	return roots
}
