package core

import (
	"fmt"

	"sdr/internal/sim"
)

// CheckRequirements verifies, on a concrete network, the requirements of
// Section 3.5 that are properties of the inner algorithm's inputs rather
// than of its dynamics:
//
//   - Requirement 2e: the state produced by the reset(u) macro satisfies
//     P_reset(u);
//   - Requirement 2d: if every member of a closed neighbourhood is in its
//     reset state, then P_ICorrect(u) holds;
//   - P_reset(u) reads only u's own state and constants (Requirement 2b) —
//     checked indirectly: IsReset receives a single state by its signature.
//
// The remaining requirements (1, 2a, 2c) are enforced structurally by the
// composition (inner rules cannot write SDR variables and are guarded by
// P_Clean ∧ P_ICorrect) and by closure tests in the checker package.
func CheckRequirements(inner Resettable, net *sim.Network) error {
	n := net.N()

	// Requirement 2e.
	for u := 0; u < n; u++ {
		rs := inner.ResetState(u, net)
		if rs == nil {
			return fmt.Errorf("core: ResetState(%d) returned nil", u)
		}
		if !inner.IsReset(u, net, rs) {
			return fmt.Errorf("core: requirement 2e violated: ResetState(%d) = %v does not satisfy P_reset", u, rs)
		}
	}

	// Requirement 2d: build the all-reset configuration (wrapped in clean SDR
	// states) and check P_ICorrect everywhere.
	states := make([]sim.State, n)
	for u := 0; u < n; u++ {
		states[u] = ComposedState{SDR: CleanSDRState(), Inner: inner.ResetState(u, net)}
	}
	c := sim.NewConfiguration(states)
	for u := 0; u < n; u++ {
		if !PICorrect(inner, net.View(c, u)) {
			return fmt.Errorf("core: requirement 2d violated: all-reset neighbourhood of process %d is not P_ICorrect", u)
		}
	}

	// The pre-defined initial configuration of I must be well-formed too: the
	// paper's typical execution starts from γ_init with every status C.
	for u := 0; u < n; u++ {
		if inner.InitialInner(u, net) == nil {
			return fmt.Errorf("core: InitialInner(%d) returned nil", u)
		}
	}
	return nil
}
