package core

import (
	"strings"
	"testing"
	"testing/quick"

	"sdr/internal/sim"
)

// testInner is a tiny Resettable used by the unit tests of this package: each
// process holds one integer; the reset state is 0; a state is locally correct
// when it differs from every neighbour by at most 1. It behaves like a
// miniature unison without wrap-around, which keeps expected behaviours easy
// to compute by hand.
type testInner struct{ limit int }

type testInnerState struct{ V int }

func (s testInnerState) Clone() sim.State { return s }
func (s testInnerState) Equal(o sim.State) bool {
	os, ok := o.(testInnerState)
	return ok && os == s
}
func (s testInnerState) String() string {
	return "v=" + itoa(s.V)
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func newTestInner(limit int) *testInner { return &testInner{limit: limit} }

func (a *testInner) Name() string                             { return "test-inner" }
func (a *testInner) InitialInner(int, *sim.Network) sim.State { return testInnerState{V: 0} }
func (a *testInner) ResetState(int, *sim.Network) sim.State   { return testInnerState{V: 0} }
func (a *testInner) IsReset(_ int, _ *sim.Network, inner sim.State) bool {
	return inner.(testInnerState).V == 0
}
func (a *testInner) EnumerateInner(int, *sim.Network) []sim.State {
	out := make([]sim.State, 0, a.limit+1)
	for v := 0; v <= a.limit; v++ {
		out = append(out, testInnerState{V: v})
	}
	return out
}

func (a *testInner) ICorrect(v InnerView) bool {
	self := v.Self().(testInnerState).V
	return v.AllNeighbors(func(s sim.State) bool {
		d := s.(testInnerState).V - self
		return d >= -1 && d <= 1
	})
}

func (a *testInner) InnerRules() []InnerRule {
	return []InnerRule{{
		Name: "inc",
		Guard: func(v InnerView) bool {
			if !v.Clean() {
				return false
			}
			self := v.Self().(testInnerState).V
			if self >= a.limit {
				return false
			}
			// A process may increment when it is a local minimum.
			return v.AllNeighbors(func(s sim.State) bool { return s.(testInnerState).V >= self })
		},
		Action: func(v InnerView) sim.State {
			return testInnerState{V: v.Self().(testInnerState).V + 1}
		},
	}}
}

var (
	_ Resettable      = (*testInner)(nil)
	_ InnerEnumerable = (*testInner)(nil)
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusC:   "C",
		StatusRB:  "RB",
		StatusRF:  "RF",
		Status(9): "Status(9)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestStatusValid(t *testing.T) {
	for _, st := range []Status{StatusC, StatusRB, StatusRF} {
		if !st.Valid() {
			t.Errorf("%v should be valid", st)
		}
	}
	if Status(0).Valid() || Status(4).Valid() {
		t.Error("out-of-range statuses should be invalid")
	}
}

func TestSDRStateString(t *testing.T) {
	if got := CleanSDRState().String(); got != "C" {
		t.Errorf("clean state renders as %q, want C", got)
	}
	if got := (SDRState{St: StatusRB, D: 4}).String(); got != "RB@4" {
		t.Errorf("broadcast state renders as %q, want RB@4", got)
	}
	if got := (SDRState{St: StatusRF, D: 0}).String(); got != "RF@0" {
		t.Errorf("feedback state renders as %q, want RF@0", got)
	}
}

func TestSDRStateEqual(t *testing.T) {
	a := SDRState{St: StatusRB, D: 1}
	if !a.Equal(SDRState{St: StatusRB, D: 1}) {
		t.Error("identical states must be equal")
	}
	if a.Equal(SDRState{St: StatusRB, D: 2}) || a.Equal(SDRState{St: StatusRF, D: 1}) {
		t.Error("different states must not be equal")
	}
}

func TestComposedStateCloneAndEqual(t *testing.T) {
	s := ComposedState{SDR: SDRState{St: StatusRB, D: 2}, Inner: testInnerState{V: 3}}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone must equal the original")
	}
	other := ComposedState{SDR: SDRState{St: StatusRB, D: 2}, Inner: testInnerState{V: 4}}
	if s.Equal(other) {
		t.Error("states with different inner parts must not be equal")
	}
	if s.Equal(testInnerState{V: 3}) {
		t.Error("a composed state must not equal a foreign state type")
	}
}

func TestComposedStateString(t *testing.T) {
	s := ComposedState{SDR: SDRState{St: StatusRF, D: 1}, Inner: testInnerState{V: 2}}
	str := s.String()
	if !strings.Contains(str, "RF@1") || !strings.Contains(str, "v=2") {
		t.Errorf("composed state rendering %q should mention both parts", str)
	}
}

func TestSDRPartInnerPartAccessors(t *testing.T) {
	s := ComposedState{SDR: SDRState{St: StatusRB, D: 7}, Inner: testInnerState{V: 5}}
	if got := SDRPart(s); got != s.SDR {
		t.Errorf("SDRPart = %v, want %v", got, s.SDR)
	}
	if got := InnerPart(s); !got.Equal(testInnerState{V: 5}) {
		t.Errorf("InnerPart = %v, want v=5", got)
	}
}

func TestWithSDRAndWithInner(t *testing.T) {
	s := ComposedState{SDR: CleanSDRState(), Inner: testInnerState{V: 1}}
	replaced := WithSDR(s, SDRState{St: StatusRF, D: 3})
	if SDRPart(replaced).St != StatusRF || SDRPart(replaced).D != 3 {
		t.Errorf("WithSDR did not replace the SDR part: %v", replaced)
	}
	if !InnerPart(replaced).Equal(testInnerState{V: 1}) {
		t.Errorf("WithSDR must keep the inner part: %v", replaced)
	}
	replaced2 := WithInner(s, testInnerState{V: 9})
	if !InnerPart(replaced2).Equal(testInnerState{V: 9}) {
		t.Errorf("WithInner did not replace the inner part: %v", replaced2)
	}
	if SDRPart(replaced2) != s.SDR {
		t.Errorf("WithInner must keep the SDR part: %v", replaced2)
	}
}

func TestMustComposedPanicsOnForeignState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SDRPart on a non-composed state must panic")
		}
	}()
	SDRPart(testInnerState{V: 0})
}

func TestQuickSDRStateStringInjective(t *testing.T) {
	// Distinct reset-involved SDR states must render differently:
	// Configuration.Key relies on String for state-space exploration. States
	// with status C all render as "C" by design (the distance is meaningless
	// there), so the property quantifies over RB/RF states only.
	f := func(d1, d2 uint8, s1, s2 bool) bool {
		toStatus := func(b bool) Status {
			if b {
				return StatusRB
			}
			return StatusRF
		}
		st1 := SDRState{St: toStatus(s1), D: int(d1)}
		st2 := SDRState{St: toStatus(s2), D: int(d2)}
		if st1.Equal(st2) {
			return st1.String() == st2.String()
		}
		return st1.String() != st2.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if (SDRState{St: StatusC, D: 0}).String() != (SDRState{St: StatusC, D: 7}).String() {
		t.Error("states with status C render identically regardless of the distance")
	}
}
