package core

import "sdr/internal/sim"

// InnerView is the view an input algorithm I gets of its closed
// neighbourhood. It hides the difference between running standalone (states
// are plain inner states, no reset machinery) and running composed with SDR
// (states carry SDR variables): in both cases Self and Neighbor return inner
// states, and Clean exposes the SDR predicate P_Clean(u), which is vacuously
// true in standalone runs.
type InnerView struct {
	view     sim.View
	composed bool
}

// Self returns the inner state of the process.
func (iv InnerView) Self() sim.State {
	if iv.composed {
		return InnerPart(iv.view.Self())
	}
	return iv.view.Self()
}

// Degree returns the number of neighbours.
func (iv InnerView) Degree() int { return iv.view.Degree() }

// Neighbor returns the inner state of the i-th neighbour.
func (iv InnerView) Neighbor(i int) sim.State {
	if iv.composed {
		return InnerPart(iv.view.Neighbor(i))
	}
	return iv.view.Neighbor(i)
}

// ID returns the identifier of the process (identified networks only).
func (iv InnerView) ID() int { return iv.view.ID() }

// NeighborID returns the identifier of the i-th neighbour (identified
// networks only).
func (iv InnerView) NeighborID(i int) int { return iv.view.NeighborID(i) }

// Process returns the simulator-level process index (instrumentation only).
func (iv InnerView) Process() int { return iv.view.Process() }

// Clean is the SDR predicate P_Clean(u): every member of the closed
// neighbourhood has status C. In standalone runs (no SDR) it is always true.
func (iv InnerView) Clean() bool {
	if !iv.composed {
		return true
	}
	if SDRPart(iv.view.Self()).St != StatusC {
		return false
	}
	for i := 0; i < iv.view.Degree(); i++ {
		if SDRPart(iv.view.Neighbor(i)).St != StatusC {
			return false
		}
	}
	return true
}

// AnyNeighbor reports whether some neighbour's inner state satisfies pred.
func (iv InnerView) AnyNeighbor(pred func(sim.State) bool) bool {
	for i := 0; i < iv.Degree(); i++ {
		if pred(iv.Neighbor(i)) {
			return true
		}
	}
	return false
}

// AllNeighbors reports whether every neighbour's inner state satisfies pred.
func (iv InnerView) AllNeighbors(pred func(sim.State) bool) bool {
	for i := 0; i < iv.Degree(); i++ {
		if !pred(iv.Neighbor(i)) {
			return false
		}
	}
	return true
}

// CountNeighbors returns how many neighbour inner states satisfy pred.
func (iv InnerView) CountNeighbors(pred func(sim.State) bool) int {
	count := 0
	for i := 0; i < iv.Degree(); i++ {
		if pred(iv.Neighbor(i)) {
			count++
		}
	}
	return count
}

// NewInnerView adapts a raw view over composed states into an InnerView.
// It is exported for checkers and tests that need to evaluate inner
// predicates on composed configurations.
func NewInnerView(v sim.View) InnerView { return InnerView{view: v, composed: true} }

// NewStandaloneView adapts a raw view over plain inner states.
func NewStandaloneView(v sim.View) InnerView { return InnerView{view: v, composed: false} }

// InnerRule is a guarded rule of the input algorithm I, expressed over inner
// states. When the rule runs composed with SDR, the composition automatically
// strengthens the guard with P_Clean(u) ∧ P_ICorrect(u) so that Requirement
// 2c of the paper (I is disabled whenever ¬P_ICorrect(u) ∨ ¬P_Clean(u)) holds
// by construction.
type InnerRule struct {
	// Name identifies the rule in traces and statistics.
	Name string
	// Guard reports whether the rule is enabled.
	Guard func(InnerView) bool
	// Action computes the new inner state of the process.
	Action func(InnerView) sim.State
}

// Resettable is what an input algorithm I must provide to be composed with
// SDR (Section 3.5 of the paper):
//
//   - its rules and pre-defined initial state;
//   - P_ICorrect(u), the local-consistency predicate used to detect
//     inconsistencies (Requirement 2a: it must not read SDR variables and
//     must be closed by I);
//   - P_reset(u), which recognises the pre-defined reset state and reads
//     only the process's own inner variables (Requirement 2b);
//   - the reset macro, i.e. the reset state itself (Requirement 2e).
//
// Requirement 2c (I disabled when ¬P_ICorrect ∨ ¬P_Clean) is enforced by the
// composition; Requirement 2d (all-reset closed neighbourhoods are correct)
// is a property of the provided predicates that CheckRequirements verifies.
type Resettable interface {
	// Name returns the algorithm's short name.
	Name() string
	// InnerRules returns the rules of I. The slice must not be modified.
	InnerRules() []InnerRule
	// InitialInner returns the pre-defined initial state of process u
	// (the γ_init of the paper's non-stabilizing algorithms).
	InitialInner(u int, net *sim.Network) sim.State
	// ICorrect is P_ICorrect(u), evaluated on the inner states of the closed
	// neighbourhood of u.
	ICorrect(v InnerView) bool
	// IsReset is P_reset(u): whether the given inner state is the pre-defined
	// reset state of process u. It reads only the process's own state
	// (Requirement 2b) but may depend on the process's constants (its
	// identifier, its being a designated root, ...), which is why the process
	// index and the network are supplied. It must recognise exactly the
	// states produced by ResetState: accepting states that are not the
	// process's reset state breaks Requirement 2d and, with it, the
	// no-alive-root-creation property (Theorem 3).
	IsReset(u int, net *sim.Network, inner sim.State) bool
	// ResetState is the reset(u) macro: the pre-defined state installed when
	// u is reset. It must satisfy IsReset (Requirement 2e).
	ResetState(u int, net *sim.Network) sim.State
}

// InnerEnumerable is optionally implemented by inner algorithms whose local
// state space can be enumerated, enabling exhaustive verification of the
// composition on small networks.
type InnerEnumerable interface {
	// EnumerateInner returns every possible inner state of process u.
	EnumerateInner(u int, net *sim.Network) []sim.State
}

// InnerIndexedEnumerable is the indexed twin of InnerEnumerable, with the
// same positional-equality contract as sim.IndexedEnumerable:
// InnerStateCount(u, net) == len(EnumerateInner(u, net)) and
// InnerStateAt(u, net, i) equals EnumerateInner(u, net)[i], returned as a
// fresh value the caller may own. The composition wrappers forward it so
// that fault sampling over a composed product space costs O(1) per draw
// instead of materializing the enumeration.
type InnerIndexedEnumerable interface {
	InnerEnumerable
	// InnerStateCount returns the size of process u's inner state space.
	InnerStateCount(u int, net *sim.Network) int
	// InnerStateAt returns the i-th inner state of the enumeration order,
	// for 0 ≤ i < InnerStateCount(u, net).
	InnerStateAt(u int, net *sim.Network, i int) sim.State
}
