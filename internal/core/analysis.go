package core

import (
	"fmt"

	"sdr/internal/sim"
)

// This file provides the analysis machinery the paper's proofs are built on
// (alive roots, segments, reset branches) as runtime observers, so that the
// theorems can be checked on executions: Theorem 3 (no alive-root creation),
// Remark 5 (at most n+1 segments), Theorem 4 (per-segment rule language) and
// Corollary 4 (at most 3n+3 SDR moves per process).

// ResetParents returns the reset parents of u in configuration c
// (Definition 4): neighbours v with RParent(v, u), i.e. st_u ≠ C, P_reset(u),
// d_u > d_v and (st_u = st_v ∨ st_v = RB).
func ResetParents(inner Resettable, net *sim.Network, c *sim.Configuration, u int) []int {
	view := net.View(c, u)
	self := SDRPart(view.Self())
	if self.St == StatusC || !PReset(inner, view) {
		return nil
	}
	var parents []int
	for i, deg := 0, net.Degree(u); i < deg; i++ {
		nb := SDRPart(view.Neighbor(i))
		if nb.D < self.D && (nb.St == self.St || nb.St == StatusRB) {
			parents = append(parents, net.Neighbor(u, i))
		}
	}
	return parents
}

// MaxBranchDepth returns, for every process, the maximum depth at which it
// appears in a reset branch of configuration c (0 for roots and for processes
// that belong to no branch). Depths are computed by longest-path relaxation
// over the reset-parent DAG; the DAG property follows from d_parent < d_child.
func MaxBranchDepth(inner Resettable, net *sim.Network, c *sim.Configuration) []int {
	n := net.N()
	parents := make([][]int, n)
	for u := 0; u < n; u++ {
		parents[u] = ResetParents(inner, net, c, u)
	}
	depth := make([]int, n)
	// Relax repeatedly; distances strictly increase along parent links, so at
	// most n iterations are needed.
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			for _, p := range parents[u] {
				if depth[p]+1 > depth[u] {
					depth[u] = depth[p] + 1
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return depth
}

// Observer is a sim.StepHook factory that tracks the quantities the paper's
// analysis is phrased in, over one execution of a composition I ∘ SDR.
type Observer struct {
	inner Resettable
	net   *sim.Network

	aliveRootViolations int
	segments            int
	prevAliveRoots      map[int]bool
	initialized         bool

	sdrMovesPerProcess []int
	// perSegmentRules tracks, per process, the SDR rules executed in the
	// current segment, for the Theorem 4 language check.
	perSegmentRules   [][]string
	languageViolation string
}

// NewObserver creates an observer for executions of Compose(inner) on net.
func NewObserver(inner Resettable, net *sim.Network) *Observer {
	return &Observer{
		inner:              inner,
		net:                net,
		sdrMovesPerProcess: make([]int, net.N()),
		perSegmentRules:    make([][]string, net.N()),
	}
}

// Hook returns the sim.StepHook to register with sim.WithStepHook.
func (o *Observer) Hook() sim.StepHook {
	return func(info sim.StepInfo) {
		o.observe(info)
	}
}

// Prime records the alive roots of the starting configuration. Calling it is
// optional: the first observed step primes the observer from its Before
// configuration otherwise.
func (o *Observer) Prime(c *sim.Configuration) {
	o.prevAliveRoots = o.aliveRootSet(c)
	o.segments = 1
	o.initialized = true
}

func (o *Observer) aliveRootSet(c *sim.Configuration) map[int]bool {
	set := make(map[int]bool)
	for _, u := range AliveRoots(o.inner, o.net, c) {
		set[u] = true
	}
	return set
}

func (o *Observer) observe(info sim.StepInfo) {
	if !o.initialized {
		o.Prime(info.Before)
	}
	for i, u := range info.Activated {
		rule := info.Rules[i]
		if IsSDRRule(rule) {
			o.sdrMovesPerProcess[u]++
			o.perSegmentRules[u] = append(o.perSegmentRules[u], rule)
		}
	}

	after := o.aliveRootSet(info.After)
	for u := range after {
		if !o.prevAliveRoots[u] {
			o.aliveRootViolations++
		}
	}
	if len(after) < len(o.prevAliveRoots) {
		// A segment ended with this step (Definition 3).
		o.checkSegmentLanguage()
		o.segments++
		for u := range o.perSegmentRules {
			o.perSegmentRules[u] = nil
		}
	}
	o.prevAliveRoots = after
}

// checkSegmentLanguage verifies Theorem 4: within a segment, the SDR rules of
// each process form a word of (C + ε)(RB + R + ε)(RF + ε).
func (o *Observer) checkSegmentLanguage() {
	for u, rules := range o.perSegmentRules {
		if !matchesSegmentLanguage(rules) {
			o.languageViolation = fmt.Sprintf("process %d executed %v within one segment", u, rules)
			return
		}
	}
}

func matchesSegmentLanguage(rules []string) bool {
	i := 0
	if i < len(rules) && rules[i] == RuleC {
		i++
	}
	if i < len(rules) && (rules[i] == RuleRB || rules[i] == RuleR) {
		i++
	}
	if i < len(rules) && rules[i] == RuleRF {
		i++
	}
	return i == len(rules)
}

// AliveRootViolations returns how many times a new alive root appeared
// (must be 0 by Theorem 3).
func (o *Observer) AliveRootViolations() int { return o.aliveRootViolations }

// Segments returns the number of segments observed so far (Definition 3).
// It is 0 before any step or priming.
func (o *Observer) Segments() int {
	o.checkSegmentLanguage()
	return o.segments
}

// SDRMovesPerProcess returns the number of SDR-rule moves of each process.
func (o *Observer) SDRMovesPerProcess() []int {
	out := make([]int, len(o.sdrMovesPerProcess))
	copy(out, o.sdrMovesPerProcess)
	return out
}

// MaxSDRMoves returns the maximum number of SDR-rule moves executed by any
// single process (to compare against the 3n+3 bound of Corollary 4).
func (o *Observer) MaxSDRMoves() int {
	best := 0
	for _, m := range o.sdrMovesPerProcess {
		if m > best {
			best = m
		}
	}
	return best
}

// LanguageViolation returns a description of the first Theorem 4 violation
// observed, or the empty string when none occurred.
func (o *Observer) LanguageViolation() string {
	o.checkSegmentLanguage()
	return o.languageViolation
}
