// Package core implements the paper's primary contribution: SDR, the
// self-stabilizing distributed cooperative reset algorithm (Algorithm 1 of
// Devismes & Johnen, 2019), and the composition operator I ∘ SDR that makes
// an input algorithm I self-stabilizing.
//
// Every predicate, macro and rule of Algorithm 1 is implemented verbatim:
//
//	P_Correct(u) ≡ st_u = C ⇒ P_ICorrect(u)
//	P_Clean(u)   ≡ ∀v ∈ N[u], st_v = C
//	P_R1(u)      ≡ st_u = C ∧ ¬P_reset(u) ∧ (∃v ∈ N(u), st_v = RF)
//	P_RB(u)      ≡ st_u = C ∧ (∃v ∈ N(u), st_v = RB)
//	P_RF(u)      ≡ st_u = RB ∧ P_reset(u) ∧
//	               (∀v ∈ N(u), (st_v = RB ∧ d_v ≤ d_u) ∨ (st_v = RF ∧ P_reset(v)))
//	P_C(u)       ≡ st_u = RF ∧
//	               (∀v ∈ N[u], P_reset(v) ∧ ((st_v = RF ∧ d_v ≥ d_u) ∨ st_v = C))
//	P_R2(u)      ≡ st_u ≠ C ∧ ¬P_reset(u)
//	P_Up(u)      ≡ ¬P_RB(u) ∧ (P_R1(u) ∨ P_R2(u) ∨ ¬P_Correct(u))
//
// with rules rule_RB, rule_RF, rule_C and rule_R as in the paper.
package core

import (
	"fmt"
	"strconv"
)

// Status is the reset status st_u of a process: C (correct, not involved in a
// reset), RB (reset broadcast phase) or RF (reset feedback phase).
type Status int

// Reset statuses, following the paper's naming.
const (
	// StatusC means the process is not currently involved in a reset.
	StatusC Status = iota + 1
	// StatusRB means the process is in the broadcast phase of a reset.
	StatusRB
	// StatusRF means the process is in the feedback phase of a reset.
	StatusRF
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusC:
		return "C"
	case StatusRB:
		return "RB"
	case StatusRF:
		return "RF"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Valid reports whether s is one of the three statuses.
func (s Status) Valid() bool {
	return s == StatusC || s == StatusRB || s == StatusRF
}

// SDRState holds the two variables Algorithm SDR maintains at each process:
// the status st_u and the distance d_u (meaningful only when st_u ≠ C).
type SDRState struct {
	// St is the reset status st_u.
	St Status
	// D is the distance value d_u in the reset DAG.
	D int
}

// String renders the SDR part of a state as "C", "RB@2", "RF@0", ...
func (s SDRState) String() string {
	if s.St == StatusC {
		return s.St.String()
	}
	return fmt.Sprintf("%s@%d", s.St, s.D)
}

// AppendKey appends exactly the String() rendering to dst without
// allocating (the sim.KeyAppender bypass, reached through
// ComposedState.AppendStateKey).
func (s SDRState) AppendKey(dst []byte) []byte {
	if s.St == StatusC {
		return append(dst, 'C')
	}
	dst = append(dst, s.St.String()...)
	dst = append(dst, '@')
	return strconv.AppendInt(dst, int64(s.D), 10)
}

// Equal reports value equality.
func (s SDRState) Equal(o SDRState) bool { return s.St == o.St && s.D == o.D }

// CleanSDRState returns the SDR state of a process outside any reset
// (status C, distance 0). This is the SDR part of the pre-defined initial
// configuration used by the non-stabilizing inner algorithms.
func CleanSDRState() SDRState { return SDRState{St: StatusC, D: 0} }
