package core

import (
	"math/rand"
	"strings"
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestComposeRequiresInner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose(nil) must panic")
		}
	}()
	Compose(nil)
}

func TestNewStandaloneRequiresInner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStandalone(nil) must panic")
		}
	}()
	NewStandalone(nil)
}

func TestComposedNameAndRules(t *testing.T) {
	inner := newTestInner(3)
	comp := Compose(inner)
	if !strings.Contains(comp.Name(), "test-inner") || !strings.Contains(comp.Name(), "SDR") {
		t.Errorf("composition name %q should mention both algorithms", comp.Name())
	}
	if got := Compose(inner, WithUncooperativeResets()).Name(); !strings.Contains(got, "uncoop") {
		t.Errorf("uncooperative composition name %q should say so", got)
	}
	rules := comp.Rules()
	if len(rules) != 4+len(inner.InnerRules()) {
		t.Fatalf("composition has %d rules, want %d", len(rules), 4+len(inner.InnerRules()))
	}
	names := make(map[string]bool)
	for _, r := range rules {
		names[r.Name] = true
	}
	for _, want := range []string{RuleRB, RuleRF, RuleC, RuleR, InnerRuleName("inc")} {
		if !names[want] {
			t.Errorf("composition is missing rule %s", want)
		}
	}
	if comp.Inner() != Resettable(inner) {
		t.Error("Inner() must return the composed input algorithm")
	}
}

func TestComposedInitialState(t *testing.T) {
	inner := newTestInner(3)
	comp := Compose(inner)
	net := pathNetwork(t)
	s := comp.InitialState(0, net)
	cs, ok := s.(ComposedState)
	if !ok {
		t.Fatalf("initial state has type %T, want ComposedState", s)
	}
	if cs.SDR != CleanSDRState() {
		t.Errorf("initial SDR state = %v, want clean", cs.SDR)
	}
	if !inner.IsReset(0, net, cs.Inner) {
		t.Errorf("initial inner state %v should be the pre-defined initial state", cs.Inner)
	}
}

func TestComposedEnumerateStates(t *testing.T) {
	inner := newTestInner(2)
	comp := Compose(inner)
	net := pathNetwork(t)
	states := comp.EnumerateStates(0, net)
	// 3 inner values × (1 C state + 2 statuses × (n+1) distances).
	want := 3 * (1 + 2*(net.N()+1))
	if len(states) != want {
		t.Fatalf("enumerated %d states, want %d", len(states), want)
	}
	seen := make(map[string]bool, len(states))
	for _, s := range states {
		if seen[s.String()] {
			t.Fatalf("duplicate enumerated state %s", s)
		}
		seen[s.String()] = true
	}
}

// TestIndexedEnumerationMatchesEnumeration pins the sim.IndexedEnumerable
// contract the fault injectors rely on for bit-identical sampling: for both
// the composition and the standalone wrapper, StateCount equals the
// enumeration's length and StateAt(i) equals its i-th entry, at every
// process and index.
func TestIndexedEnumerationMatchesEnumeration(t *testing.T) {
	inner := newTestInner(2)
	net := pathNetwork(t)
	for _, alg := range []sim.IndexedEnumerable{Compose(inner), NewStandalone(inner)} {
		enum := alg.(sim.Enumerable)
		for u := 0; u < net.N(); u++ {
			states := enum.EnumerateStates(u, net)
			if got := alg.StateCount(u, net); got != len(states) {
				t.Fatalf("%T: StateCount(%d) = %d, want %d", alg, u, got, len(states))
			}
			for i, want := range states {
				if got := alg.StateAt(u, net, i); got.String() != want.String() {
					t.Fatalf("%T: StateAt(%d, %d) = %s, want %s", alg, u, i, got, want)
				}
			}
		}
	}
}

func TestMutualExclusionOfRules(t *testing.T) {
	// Lemma 5 and Remark 2: in every reachable-or-not configuration of the
	// composition, at most one rule is enabled per process. We sample the
	// state space broadly.
	inner := newTestInner(2)
	comp := Compose(inner)
	net := pathNetwork(t)
	states := comp.EnumerateStates(0, net)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		cfg := sim.NewConfiguration([]sim.State{
			states[rng.Intn(len(states))].Clone(),
			states[rng.Intn(len(states))].Clone(),
			states[rng.Intn(len(states))].Clone(),
		})
		for u := 0; u < net.N(); u++ {
			if enabled := sim.EnabledRules(comp, net, cfg, u); len(enabled) > 1 {
				var names []string
				for _, ri := range enabled {
					names = append(names, comp.Rules()[ri].Name)
				}
				t.Fatalf("process %d has %d enabled rules (%v) in %s", u, len(enabled), names, cfg)
			}
		}
	}
}

func TestInnerRulesGuardedByCleanAndICorrect(t *testing.T) {
	// Requirement 2c by construction: the inner rule must be disabled whenever
	// P_Clean or P_ICorrect fails, even if the inner guard itself would fire.
	inner := newTestInner(5)
	comp := Compose(inner)
	net := pathNetwork(t)

	// Process 0 could tick (local minimum) but its neighbour broadcasts.
	cfg := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRB, D: 0}, CleanSDRState()},
		[]int{0, 0, 0})
	for _, ri := range sim.EnabledRules(comp, net, cfg, 0) {
		if comp.Rules()[ri].Name == InnerRuleName("inc") {
			t.Error("inner rule enabled although P_Clean(0) fails")
		}
	}

	// Process 2 is I-incorrect (difference 2 with neighbour 1): its inner rule
	// must be disabled even though all statuses are C.
	cfg2 := composedConfig(t, allClean(3), []int{0, 0, 2})
	for _, ri := range sim.EnabledRules(comp, net, cfg2, 2) {
		if comp.Rules()[ri].Name == InnerRuleName("inc") {
			t.Error("inner rule enabled although P_ICorrect(2) fails")
		}
	}
}

func TestRuleRBJoinsLowestBroadcastingNeighbor(t *testing.T) {
	inner := newTestInner(5)
	comp := Compose(inner)
	g := graph.Star(4) // centre 0 with leaves 1..3
	net := sim.NewNetwork(g)

	// Two broadcasting leaves at distances 4 and 2; the centre joins at
	// distance min(4,2)+1 = 3 and resets its inner state.
	cfg := sim.NewConfiguration([]sim.State{
		ComposedState{SDR: CleanSDRState(), Inner: testInnerState{V: 3}},
		ComposedState{SDR: SDRState{St: StatusRB, D: 4}, Inner: testInnerState{V: 0}},
		ComposedState{SDR: SDRState{St: StatusRB, D: 2}, Inner: testInnerState{V: 0}},
		ComposedState{SDR: CleanSDRState(), Inner: testInnerState{V: 0}},
	})
	v := net.View(cfg, 0)
	var rbRule *sim.Rule
	for i := range comp.Rules() {
		if comp.Rules()[i].Name == RuleRB {
			rbRule = &comp.Rules()[i]
		}
	}
	if rbRule == nil || !rbRule.Guard(v) {
		t.Fatal("rule_RB must be enabled at the centre")
	}
	next := rbRule.Action(v).(ComposedState)
	if next.SDR.St != StatusRB || next.SDR.D != 3 {
		t.Errorf("after rule_RB the centre is %v, want RB@3", next.SDR)
	}
	if !inner.IsReset(v.Process(), net, next.Inner) {
		t.Errorf("rule_RB must reset the inner state, got %v", next.Inner)
	}
}

func TestUncooperativeRuleRBBecomesRoot(t *testing.T) {
	inner := newTestInner(5)
	comp := Compose(inner, WithUncooperativeResets())
	net := pathNetwork(t)
	cfg := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRB, D: 4}, CleanSDRState()},
		[]int{3, 0, 0})
	v := net.View(cfg, 0)
	for i := range comp.Rules() {
		r := comp.Rules()[i]
		if r.Name == RuleRB && r.Guard(v) {
			next := r.Action(v).(ComposedState)
			if next.SDR.D != 0 {
				t.Errorf("uncooperative rule_RB should take distance 0, got %d", next.SDR.D)
			}
			return
		}
	}
	t.Fatal("rule_RB not enabled at process 0")
}

func TestRuleRMakesRoot(t *testing.T) {
	inner := newTestInner(5)
	comp := Compose(inner)
	net := pathNetwork(t)
	// Process 2 is I-incorrect with no broadcasting neighbour.
	cfg := composedConfig(t, allClean(3), []int{0, 0, 2})
	v := net.View(cfg, 2)
	for i := range comp.Rules() {
		r := comp.Rules()[i]
		if r.Name == RuleR && r.Guard(v) {
			next := r.Action(v).(ComposedState)
			if next.SDR.St != StatusRB || next.SDR.D != 0 {
				t.Errorf("rule_R must install RB@0, got %v", next.SDR)
			}
			if !inner.IsReset(v.Process(), net, next.Inner) {
				t.Errorf("rule_R must reset the inner state, got %v", next.Inner)
			}
			return
		}
	}
	t.Fatal("rule_R not enabled at process 2")
}

func TestStandaloneBehaviour(t *testing.T) {
	inner := newTestInner(2)
	standalone := NewStandalone(inner)
	if standalone.Name() != inner.Name() {
		t.Errorf("standalone name %q should be the inner name", standalone.Name())
	}
	if standalone.Inner() != Resettable(inner) {
		t.Error("Inner() must return the wrapped algorithm")
	}
	net := pathNetwork(t)
	if got := len(standalone.EnumerateStates(0, net)); got != 3 {
		t.Errorf("standalone enumerates %d states, want 3", got)
	}

	// From γ_init the standalone test algorithm raises every value to the
	// limit and terminates.
	eng := sim.NewEngine(net, standalone, sim.SynchronousDaemon{})
	res := eng.Run(sim.InitialConfiguration(standalone, net))
	if !res.Terminated {
		t.Fatal("standalone run should terminate")
	}
	for u := 0; u < net.N(); u++ {
		if v := res.Final.State(u).(testInnerState).V; v != 2 {
			t.Errorf("process %d ended at %d, want 2", u, v)
		}
	}

	// Standalone guards include P_ICorrect: from an incorrect configuration
	// the affected processes stay frozen.
	bad := sim.NewConfiguration([]sim.State{
		testInnerState{V: 0}, testInnerState{V: 2}, testInnerState{V: 0},
	})
	if sim.Enabled(standalone, net, bad, 0) || sim.Enabled(standalone, net, bad, 1) {
		t.Error("I-incorrect processes must be disabled in the standalone wrapper")
	}
}

func TestCheckRequirements(t *testing.T) {
	net := pathNetwork(t)
	if err := CheckRequirements(newTestInner(3), net); err != nil {
		t.Errorf("the test inner algorithm satisfies the requirements: %v", err)
	}
	if err := CheckRequirements(badResetInner{newTestInner(3)}, net); err == nil {
		t.Error("an inner algorithm whose reset state is not P_reset must be rejected")
	}
}

// badResetInner violates Requirement 2e: its ResetState does not satisfy
// IsReset.
type badResetInner struct{ *testInner }

func (b badResetInner) ResetState(int, *sim.Network) sim.State { return testInnerState{V: 1} }
