package core

import (
	"fmt"

	"sdr/internal/sim"
)

// Names of the four SDR rules, as they appear in traces and move statistics.
const (
	RuleRB = "SDR:RB"
	RuleRF = "SDR:RF"
	RuleC  = "SDR:C"
	RuleR  = "SDR:R"
)

// innerRulePrefix prefixes the names of the inner algorithm's rules.
const innerRulePrefix = "I:"

// IsSDRRule reports whether the rule name refers to one of the four SDR
// rules (as opposed to a rule of the inner algorithm).
func IsSDRRule(name string) bool {
	return name == RuleRB || name == RuleRF || name == RuleC || name == RuleR
}

// InnerRuleName returns the composed trace name of an inner rule.
func InnerRuleName(name string) string { return innerRulePrefix + name }

// composeOptions carries the optional knobs of Compose.
type composeOptions struct {
	uncooperative bool
}

// ComposeOption customises the composition.
type ComposeOption func(*composeOptions)

// WithUncooperativeResets is the ablation A1 of DESIGN.md: the rule_RB action
// makes the joining process a root of its own reset (distance 0) instead of
// hooking under the neighbouring reset's DAG (compute macro). The resulting
// algorithm loses the coordination that the paper's move-complexity analysis
// relies on; benchmarks use it to quantify the value of cooperation.
func WithUncooperativeResets() ComposeOption {
	return func(o *composeOptions) { o.uncooperative = true }
}

// Composed is the composition I ∘ SDR (Section 2.5): the distributed
// algorithm whose local program is the union of the rules of SDR and of the
// input algorithm I, over the product state. It implements sim.Algorithm.
type Composed struct {
	inner Resettable
	opts  composeOptions
	rules []sim.Rule
}

var _ sim.Algorithm = (*Composed)(nil)

// Compose builds I ∘ SDR for the given input algorithm.
func Compose(inner Resettable, opts ...ComposeOption) *Composed {
	if inner == nil {
		panic("core: Compose requires a non-nil inner algorithm")
	}
	var o composeOptions
	for _, opt := range opts {
		opt(&o)
	}
	c := &Composed{inner: inner, opts: o}
	c.rules = c.buildRules()
	return c
}

// Inner returns the composed input algorithm.
func (c *Composed) Inner() Resettable { return c.inner }

// UsesIdentifiers implements sim.IdentifierUser: the SDR rules themselves
// are anonymous, but their guards call into the inner algorithm's predicates
// (P_ICorrect, P_reset), so the composition reads identifiers exactly when
// the inner algorithm declares it does — and conservatively when it declares
// nothing.
func (c *Composed) UsesIdentifiers() bool { return resettableUsesIdentifiers(c.inner) }

// resettableUsesIdentifiers reads the optional sim.IdentifierUser
// declaration of an inner algorithm, defaulting to true.
func resettableUsesIdentifiers(inner Resettable) bool {
	if iu, ok := inner.(sim.IdentifierUser); ok {
		return iu.UsesIdentifiers()
	}
	return true
}

// Name implements sim.Algorithm.
func (c *Composed) Name() string {
	suffix := ""
	if c.opts.uncooperative {
		suffix = "-uncoop"
	}
	return fmt.Sprintf("%s∘SDR%s", c.inner.Name(), suffix)
}

// Rules implements sim.Algorithm. SDR's four rules come first, followed by
// the wrapped rules of the inner algorithm; by Remark 2 and Lemma 5 of the
// paper all rules are pairwise mutually exclusive, so the order is
// irrelevant to the semantics.
func (c *Composed) Rules() []sim.Rule { return c.rules }

// InitialState implements sim.Algorithm: status C, distance 0, and the inner
// algorithm's pre-defined initial state.
func (c *Composed) InitialState(u int, net *sim.Network) sim.State {
	return ComposedState{SDR: CleanSDRState(), Inner: c.inner.InitialInner(u, net)}
}

// EnumerateStates implements sim.Enumerable when the inner algorithm
// implements InnerEnumerable. Distance values are enumerated in [0, n]
// (larger values behave identically for reachability purposes on the small
// networks used in exhaustive checks).
func (c *Composed) EnumerateStates(u int, net *sim.Network) []sim.State {
	enum, ok := c.inner.(InnerEnumerable)
	if !ok {
		return nil
	}
	inners := enum.EnumerateInner(u, net)
	statuses := []Status{StatusC, StatusRB, StatusRF}
	var out []sim.State
	for _, st := range statuses {
		maxD := net.N()
		if st == StatusC {
			// The distance is meaningless at status C; enumerate a single
			// value to keep the space small.
			maxD = 0
		}
		for d := 0; d <= maxD; d++ {
			for _, in := range inners {
				out = append(out, ComposedState{SDR: SDRState{St: st, D: d}, Inner: in.Clone()})
			}
		}
	}
	return out
}

// innerStateCount returns the size of the inner enumeration without
// materializing it when the inner algorithm indexes its space.
func innerStateCount(inner Resettable, u int, net *sim.Network) int {
	if ix, ok := inner.(InnerIndexedEnumerable); ok {
		return ix.InnerStateCount(u, net)
	}
	if enum, ok := inner.(InnerEnumerable); ok {
		return len(enum.EnumerateInner(u, net))
	}
	return 0
}

// innerStateAt returns the j-th inner state as a fresh value, indexed when
// the inner algorithm supports it.
func innerStateAt(inner Resettable, u int, net *sim.Network, j int) sim.State {
	if ix, ok := inner.(InnerIndexedEnumerable); ok {
		return ix.InnerStateAt(u, net, j)
	}
	return inner.(InnerEnumerable).EnumerateInner(u, net)[j].Clone()
}

// StateCount implements sim.IndexedEnumerable: the composed space is the
// product of the SDR block — one (C, 0) slot plus statuses RB and RF with
// distances in [0, n] each — and the inner enumeration.
func (c *Composed) StateCount(u int, net *sim.Network) int {
	return (2*(net.N()+1) + 1) * innerStateCount(c.inner, u, net)
}

// StateAt implements sim.IndexedEnumerable, reproducing EnumerateStates'
// order — statuses C, RB, RF outermost, distances next, inner states
// innermost — without materializing the product.
func (c *Composed) StateAt(u int, net *sim.Network, i int) sim.State {
	k := innerStateCount(c.inner, u, net)
	block, j := i/k, i%k
	sdr := SDRState{St: StatusC, D: 0}
	switch n := net.N(); {
	case block == 0:
		// status C enumerates the single distance 0.
	case block <= n+1:
		sdr = SDRState{St: StatusRB, D: block - 1}
	default:
		sdr = SDRState{St: StatusRF, D: block - n - 2}
	}
	return ComposedState{SDR: sdr, Inner: innerStateAt(c.inner, u, net, j)}
}

// buildRules assembles the composed rule set.
func (c *Composed) buildRules() []sim.Rule {
	inner := c.inner
	uncoop := c.opts.uncooperative

	sdrRules := []sim.Rule{
		{
			// rule_RB(u): P_RB(u) → compute(u); reset(u);
			Name:  RuleRB,
			Guard: func(v sim.View) bool { return PRB(v) },
			Action: func(v sim.View) sim.State {
				sdr := SDRState{St: StatusRB, D: 0}
				if !uncoop {
					sdr.D = minBroadcastNeighborDistance(v) + 1
				}
				return ComposedState{SDR: sdr, Inner: inner.ResetState(v.Process(), networkOf(v))}
			},
		},
		{
			// rule_RF(u): P_RF(u) → st_u := RF;
			Name:  RuleRF,
			Guard: func(v sim.View) bool { return PRF(inner, v) },
			Action: func(v sim.View) sim.State {
				cs := mustComposed(v.Self())
				return ComposedState{SDR: SDRState{St: StatusRF, D: cs.SDR.D}, Inner: cs.Inner.Clone()}
			},
		},
		{
			// rule_C(u): P_C(u) → st_u := C;
			Name:  RuleC,
			Guard: func(v sim.View) bool { return PC(inner, v) },
			Action: func(v sim.View) sim.State {
				cs := mustComposed(v.Self())
				return ComposedState{SDR: SDRState{St: StatusC, D: cs.SDR.D}, Inner: cs.Inner.Clone()}
			},
		},
		{
			// rule_R(u): P_Up(u) → beRoot(u); reset(u);
			Name:  RuleR,
			Guard: func(v sim.View) bool { return PUp(inner, v) },
			Action: func(v sim.View) sim.State {
				return ComposedState{
					SDR:   SDRState{St: StatusRB, D: 0},
					Inner: inner.ResetState(v.Process(), networkOf(v)),
				}
			},
		},
	}

	rules := sdrRules
	for _, ir := range inner.InnerRules() {
		ir := ir // capture
		rules = append(rules, sim.Rule{
			Name: InnerRuleName(ir.Name),
			Guard: func(v sim.View) bool {
				// Requirement 2c: I is disabled whenever ¬P_Clean(u) or
				// ¬P_ICorrect(u) holds.
				if !PClean(v) || !PICorrect(inner, v) {
					return false
				}
				return ir.Guard(NewInnerView(v))
			},
			Action: func(v sim.View) sim.State {
				cs := mustComposed(v.Self())
				return ComposedState{SDR: cs.SDR, Inner: ir.Action(NewInnerView(v))}
			},
		})
	}
	return rules
}

// minBroadcastNeighborDistance returns the minimum d_v over neighbours v with
// st_v = RB. It panics when no such neighbour exists, which cannot happen
// when P_RB(u) holds (the guard of rule_RB).
func minBroadcastNeighborDistance(v sim.View) int {
	best := -1
	for i := 0; i < v.Degree(); i++ {
		nb := SDRPart(v.Neighbor(i))
		if nb.St == StatusRB && (best < 0 || nb.D < best) {
			best = nb.D
		}
	}
	if best < 0 {
		panic("core: compute(u) evaluated with no broadcasting neighbour")
	}
	return best
}

// networkOf recovers the network a view belongs to. The sim package does not
// expose it directly on View to keep algorithm code honest, so the composed
// rules carry it through a package-level accessor set by the engine wrapper.
func networkOf(v sim.View) *sim.Network { return v.Network() }

// Standalone wraps a Resettable input algorithm I as a plain sim.Algorithm,
// i.e. the non-self-stabilizing algorithm the paper analyses from its
// pre-defined initial configuration (Sections 5.4 and 6.4). Inner guards are
// strengthened with P_ICorrect as in the paper's formal codes; P_Clean is
// vacuously true without SDR.
type Standalone struct {
	inner Resettable
	rules []sim.Rule
}

var _ sim.Algorithm = (*Standalone)(nil)

// NewStandalone wraps inner as a standalone algorithm.
func NewStandalone(inner Resettable) *Standalone {
	if inner == nil {
		panic("core: NewStandalone requires a non-nil inner algorithm")
	}
	s := &Standalone{inner: inner}
	for _, ir := range inner.InnerRules() {
		ir := ir
		s.rules = append(s.rules, sim.Rule{
			Name: ir.Name,
			Guard: func(v sim.View) bool {
				iv := NewStandaloneView(v)
				return inner.ICorrect(iv) && ir.Guard(iv)
			},
			Action: func(v sim.View) sim.State {
				return ir.Action(NewStandaloneView(v))
			},
		})
	}
	return s
}

// Inner returns the wrapped input algorithm.
func (s *Standalone) Inner() Resettable { return s.inner }

// UsesIdentifiers implements sim.IdentifierUser, forwarding the inner
// algorithm's declaration (conservatively true when it makes none).
func (s *Standalone) UsesIdentifiers() bool { return resettableUsesIdentifiers(s.inner) }

// Name implements sim.Algorithm.
func (s *Standalone) Name() string { return s.inner.Name() }

// Rules implements sim.Algorithm.
func (s *Standalone) Rules() []sim.Rule { return s.rules }

// InitialState implements sim.Algorithm.
func (s *Standalone) InitialState(u int, net *sim.Network) sim.State {
	return s.inner.InitialInner(u, net)
}

// EnumerateStates implements sim.Enumerable when the inner algorithm does.
func (s *Standalone) EnumerateStates(u int, net *sim.Network) []sim.State {
	if enum, ok := s.inner.(InnerEnumerable); ok {
		return enum.EnumerateInner(u, net)
	}
	return nil
}

// StateCount implements sim.IndexedEnumerable when the inner algorithm
// enumerates.
func (s *Standalone) StateCount(u int, net *sim.Network) int {
	return innerStateCount(s.inner, u, net)
}

// StateAt implements sim.IndexedEnumerable.
func (s *Standalone) StateAt(u int, net *sim.Network, i int) sim.State {
	return innerStateAt(s.inner, u, net, i)
}
