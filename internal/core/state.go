package core

import (
	"fmt"

	"sdr/internal/sim"
)

// ComposedState is the state of a process in the composition I ∘ SDR: the two
// SDR variables plus the full local state of the inner algorithm I.
type ComposedState struct {
	// SDR holds st_u and d_u.
	SDR SDRState
	// Inner is the local state of the inner algorithm.
	Inner sim.State
}

var _ sim.State = ComposedState{}

// Clone implements sim.State.
func (s ComposedState) Clone() sim.State {
	return ComposedState{SDR: s.SDR, Inner: s.Inner.Clone()}
}

// Equal implements sim.State.
func (s ComposedState) Equal(other sim.State) bool {
	o, ok := other.(ComposedState)
	return ok && s.SDR.Equal(o.SDR) && s.Inner.Equal(o.Inner)
}

// String implements sim.State.
func (s ComposedState) String() string {
	return fmt.Sprintf("{%s %s}", s.SDR, s.Inner)
}

// AppendStateKey implements sim.KeyAppender: it appends exactly the String()
// rendering, delegating the inner part to its own bypass when it has one.
func (s ComposedState) AppendStateKey(dst []byte) []byte {
	dst = append(dst, '{')
	dst = s.SDR.AppendKey(dst)
	dst = append(dst, ' ')
	dst = sim.AppendStateKey(dst, s.Inner)
	return append(dst, '}')
}

// Key64 implements sim.KeyedState: the status (2 bits), the zigzagged
// distance (16 bits) and the inner state's own encoding, when everything
// fits. The (C, d) states collapse to one rendering for every d; their
// distinct encodings simply intern to the same id, which the KeyedState
// contract allows.
func (s ComposedState) Key64() (uint64, bool) {
	ik, ok := sim.StateKey64(s.Inner)
	zd := sim.ZigZag64(s.SDR.D)
	if !ok || ik >= 1<<46 || zd >= 1<<16 || !s.SDR.St.Valid() {
		return 0, false
	}
	return ik<<18 | zd<<2 | uint64(s.SDR.St-StatusC), true
}

// mustComposed extracts the composed state or panics with a clear message;
// it guards against accidentally running composed rules on plain inner
// states.
func mustComposed(s sim.State) ComposedState {
	cs, ok := s.(ComposedState)
	if !ok {
		panic(fmt.Sprintf("core: expected ComposedState, got %T", s))
	}
	return cs
}

// SDRPart returns the SDR variables of the composed state held by s. It
// panics if s is not a ComposedState.
func SDRPart(s sim.State) SDRState { return mustComposed(s).SDR }

// InnerPart returns the inner-algorithm state of the composed state held by
// s. It panics if s is not a ComposedState.
func InnerPart(s sim.State) sim.State { return mustComposed(s).Inner }

// WithSDR returns a copy of composed state s with the SDR part replaced.
func WithSDR(s sim.State, sdr SDRState) sim.State {
	cs := mustComposed(s)
	return ComposedState{SDR: sdr, Inner: cs.Inner.Clone()}
}

// WithInner returns a copy of composed state s with the inner part replaced.
func WithInner(s sim.State, inner sim.State) sim.State {
	cs := mustComposed(s)
	return ComposedState{SDR: cs.SDR, Inner: inner}
}
