package core

import (
	"fmt"

	"sdr/internal/sim"
)

// ComposedState is the state of a process in the composition I ∘ SDR: the two
// SDR variables plus the full local state of the inner algorithm I.
type ComposedState struct {
	// SDR holds st_u and d_u.
	SDR SDRState
	// Inner is the local state of the inner algorithm.
	Inner sim.State
}

var _ sim.State = ComposedState{}

// Clone implements sim.State.
func (s ComposedState) Clone() sim.State {
	return ComposedState{SDR: s.SDR, Inner: s.Inner.Clone()}
}

// Equal implements sim.State.
func (s ComposedState) Equal(other sim.State) bool {
	o, ok := other.(ComposedState)
	return ok && s.SDR.Equal(o.SDR) && s.Inner.Equal(o.Inner)
}

// String implements sim.State.
func (s ComposedState) String() string {
	return fmt.Sprintf("{%s %s}", s.SDR, s.Inner)
}

// mustComposed extracts the composed state or panics with a clear message;
// it guards against accidentally running composed rules on plain inner
// states.
func mustComposed(s sim.State) ComposedState {
	cs, ok := s.(ComposedState)
	if !ok {
		panic(fmt.Sprintf("core: expected ComposedState, got %T", s))
	}
	return cs
}

// SDRPart returns the SDR variables of the composed state held by s. It
// panics if s is not a ComposedState.
func SDRPart(s sim.State) SDRState { return mustComposed(s).SDR }

// InnerPart returns the inner-algorithm state of the composed state held by
// s. It panics if s is not a ComposedState.
func InnerPart(s sim.State) sim.State { return mustComposed(s).Inner }

// WithSDR returns a copy of composed state s with the SDR part replaced.
func WithSDR(s sim.State, sdr SDRState) sim.State {
	cs := mustComposed(s)
	return ComposedState{SDR: sdr, Inner: cs.Inner.Clone()}
}

// WithInner returns a copy of composed state s with the inner part replaced.
func WithInner(s sim.State, inner sim.State) sim.State {
	cs := mustComposed(s)
	return ComposedState{SDR: cs.SDR, Inner: inner}
}
