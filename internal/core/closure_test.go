package core

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

// These tests reproduce the closure lemmas of Section 4.2 as step invariants
// over sampled executions of the composition: once the predicate holds at a
// process, it keeps holding in every later configuration.
//
//	Lemma 6   : ¬P_R1(u) and ¬P_R2(u) are closed by I ∘ SDR.
//	Theorem 2 : P_Correct(u) ∨ P_RB(u) is closed by I ∘ SDR.
//	Corollary 2: ¬P_Up(u) is closed by I ∘ SDR.
//	Remark 4  : the alive-root set never grows (checked in theorems_test.go).

// perProcessClosure runs executions from random configurations and checks
// that, for every process, once pred holds it holds forever.
func perProcessClosure(t *testing.T, name string, pred func(Resettable, sim.View) bool) {
	t.Helper()
	inner := newTestInner(2)
	comp := Compose(inner)
	g := graph.RandomConnected(7, 0.4, rand.New(rand.NewSource(41)))
	net := sim.NewNetwork(g)
	states := comp.EnumerateStates(0, net)
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 20; trial++ {
		cfgStates := make([]sim.State, net.N())
		for u := range cfgStates {
			cfgStates[u] = states[rng.Intn(len(states))].Clone()
		}
		start := sim.NewConfiguration(cfgStates)

		// A predicate is closed when it never goes from true to false across a
		// step; prev tracks its value per process in the previous configuration.
		violated := ""
		prev := make([]bool, net.N())
		for u := 0; u < net.N(); u++ {
			prev[u] = pred(inner, net.View(start, u))
		}
		hook := func(info sim.StepInfo) {
			for u := 0; u < net.N(); u++ {
				now := pred(inner, net.View(info.After, u))
				if prev[u] && !now && violated == "" {
					violated = name + " lost at process " + itoa(u) + " at step " + itoa(info.Step)
				}
				prev[u] = now
			}
		}

		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(int64(trial*3+1))), 0.5)
		sim.NewEngine(net, comp, daemon).Run(start, sim.WithMaxSteps(20_000), sim.WithStepHook(hook))
		if violated != "" {
			t.Fatalf("trial %d: %s", trial, violated)
		}
	}
}

func TestClosureNotPR1(t *testing.T) {
	perProcessClosure(t, "¬P_R1", func(inner Resettable, v sim.View) bool {
		return !PR1(inner, v)
	})
}

func TestClosureNotPR2(t *testing.T) {
	perProcessClosure(t, "¬P_R2", func(inner Resettable, v sim.View) bool {
		return !PR2(inner, v)
	})
}

func TestClosureCorrectOrRB(t *testing.T) {
	perProcessClosure(t, "P_Correct ∨ P_RB", func(inner Resettable, v sim.View) bool {
		return PCorrect(inner, v) || PRB(v)
	})
}

func TestClosureNotPUp(t *testing.T) {
	perProcessClosure(t, "¬P_Up", func(inner Resettable, v sim.View) bool {
		return !PUp(inner, v)
	})
}

func TestClosureNotAliveRoot(t *testing.T) {
	// Theorem 3 phrased per process: ¬(alive root) is closed.
	perProcessClosure(t, "¬alive-root", func(inner Resettable, v sim.View) bool {
		return !IsAliveRoot(inner, v)
	})
}

func TestAttractorChainP1ToP4(t *testing.T) {
	// The attractor chain of Definition 6: P1 (no P_Up), then P2 (plus no
	// P_RB), then P3 (plus no RB status), then P4 (plus no RF status) are
	// reached in this order and never left. We check reachability + closure
	// on sampled executions.
	inner := newTestInner(2)
	comp := Compose(inner)
	g := graph.Ring(6)
	net := sim.NewNetwork(g)
	states := comp.EnumerateStates(0, net)
	rng := rand.New(rand.NewSource(77))

	predP1 := func(c *sim.Configuration) bool {
		for u := 0; u < net.N(); u++ {
			if PUp(inner, net.View(c, u)) {
				return false
			}
		}
		return true
	}
	predP2 := func(c *sim.Configuration) bool {
		if !predP1(c) {
			return false
		}
		for u := 0; u < net.N(); u++ {
			if PRB(net.View(c, u)) {
				return false
			}
		}
		return true
	}
	predP3 := func(c *sim.Configuration) bool {
		if !predP2(c) {
			return false
		}
		for u := 0; u < net.N(); u++ {
			if SDRPart(c.State(u)).St == StatusRB {
				return false
			}
		}
		return true
	}
	predP4 := func(c *sim.Configuration) bool {
		if !predP3(c) {
			return false
		}
		for u := 0; u < net.N(); u++ {
			if SDRPart(c.State(u)).St == StatusRF {
				return false
			}
		}
		return true
	}
	preds := []struct {
		name string
		pred sim.Predicate
	}{
		{"P1", predP1}, {"P2", predP2}, {"P3", predP3}, {"P4", predP4},
	}

	for trial := 0; trial < 15; trial++ {
		cfgStates := make([]sim.State, net.N())
		for u := range cfgStates {
			cfgStates[u] = states[rng.Intn(len(states))].Clone()
		}
		start := sim.NewConfiguration(cfgStates)

		reached := make([]bool, len(preds))
		lost := make([]bool, len(preds))
		check := func(c *sim.Configuration) {
			for i, p := range preds {
				now := p.pred(c)
				if reached[i] && !now {
					lost[i] = true
				}
				if now {
					reached[i] = true
				}
			}
		}
		check(start)
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(int64(trial))), 0.5)
		res := sim.NewEngine(net, comp, daemon).Run(start,
			sim.WithMaxSteps(50_000),
			sim.WithStepHook(func(info sim.StepInfo) { check(info.After) }),
		)
		if !res.Terminated {
			t.Fatalf("trial %d: the composition of a terminating inner algorithm must terminate", trial)
		}
		for i, p := range preds {
			if !reached[i] {
				t.Errorf("trial %d: attractor %s never reached", trial, p.name)
			}
			if lost[i] {
				t.Errorf("trial %d: attractor %s was left after being reached", trial, p.name)
			}
		}
		// P4 is exactly the normal/terminal set for a terminating inner
		// algorithm: the final configuration must satisfy it.
		if !predP4(res.Final) {
			t.Errorf("trial %d: terminal configuration does not satisfy P4", trial)
		}
	}
}
