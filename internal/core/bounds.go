package core

// Theoretical bounds proven in the paper, exported so that tests and
// benchmarks can assert measured costs against them.

// MaxResetRounds is the round bound of Corollary 5: I ∘ SDR reaches a normal
// configuration within at most 3n rounds from any configuration.
func MaxResetRounds(n int) int { return 3 * n }

// MaxSDRMovesPerProcess is the move bound of Corollary 4: any process
// executes at most 3n+3 SDR rules in any execution of I ∘ SDR.
func MaxSDRMovesPerProcess(n int) int { return 3*n + 3 }

// MaxSegments is the segment bound of Remark 5: every execution of I ∘ SDR
// contains at most n+1 segments.
func MaxSegments(n int) int { return n + 1 }
