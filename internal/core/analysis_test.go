package core

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

func TestResetParents(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// 0:RB@0 ← 1:RB@1 ← 2:RF@2 — process 1's parent is 0, process 2's parent
	// is 1 (same status or RB), process 0 has no parent.
	cfg := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRB, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if got := ResetParents(inner, net, cfg, 0); len(got) != 0 {
		t.Errorf("process 0 should have no reset parent, got %v", got)
	}
	if got := ResetParents(inner, net, cfg, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("ResetParents(1) = %v, want [0]", got)
	}
	if got := ResetParents(inner, net, cfg, 2); len(got) != 1 || got[0] != 1 {
		t.Errorf("ResetParents(2) = %v, want [1]", got)
	}

	// A process whose inner state is not reset has no parent (P_reset is part
	// of the definition).
	cfg2 := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRB, D: 1}, CleanSDRState()},
		[]int{0, 3, 0})
	if got := ResetParents(inner, net, cfg2, 1); len(got) != 0 {
		t.Errorf("a non-reset process has no reset parent, got %v", got)
	}

	// An RF process is not the parent of an RB process (status condition).
	cfg3 := composedConfig(t,
		[]SDRState{{St: StatusRF, D: 0}, {St: StatusRB, D: 1}, CleanSDRState()},
		[]int{0, 0, 0})
	if got := ResetParents(inner, net, cfg3, 1); len(got) != 0 {
		t.Errorf("an RF process cannot be the parent of an RB process, got %v", got)
	}
}

func TestMaxBranchDepth(t *testing.T) {
	inner := newTestInner(5)
	g := graph.Path(4)
	net := sim.NewNetwork(g)
	cfg := sim.NewConfiguration([]sim.State{
		ComposedState{SDR: SDRState{St: StatusRB, D: 0}, Inner: testInnerState{V: 0}},
		ComposedState{SDR: SDRState{St: StatusRB, D: 1}, Inner: testInnerState{V: 0}},
		ComposedState{SDR: SDRState{St: StatusRB, D: 2}, Inner: testInnerState{V: 0}},
		ComposedState{SDR: CleanSDRState(), Inner: testInnerState{V: 0}},
	})
	depth := MaxBranchDepth(inner, net, cfg)
	want := []int{0, 1, 2, 0}
	for u, w := range want {
		if depth[u] != w {
			t.Errorf("depth[%d] = %d, want %d", u, depth[u], w)
		}
	}
}

func TestSegmentLanguage(t *testing.T) {
	cases := []struct {
		rules []string
		ok    bool
	}{
		{nil, true},
		{[]string{RuleC}, true},
		{[]string{RuleRB}, true},
		{[]string{RuleR, RuleRF}, true},
		{[]string{RuleC, RuleRB, RuleRF}, true},
		{[]string{RuleC, RuleR, RuleRF}, true},
		{[]string{RuleRF, RuleC}, false},
		{[]string{RuleRB, RuleRB}, false},
		{[]string{RuleC, RuleC}, false},
		{[]string{RuleRB, RuleR}, false},
		{[]string{RuleRF, RuleRF}, false},
		{[]string{RuleC, RuleRB, RuleRF, RuleC}, false},
	}
	for _, c := range cases {
		if got := matchesSegmentLanguage(c.rules); got != c.ok {
			t.Errorf("matchesSegmentLanguage(%v) = %v, want %v", c.rules, got, c.ok)
		}
	}
}

func TestObserverOnExecution(t *testing.T) {
	// Run the composition from random configurations and check the observer
	// validates the structural theorems: no alive-root creation (Theorem 3),
	// at most n+1 segments (Remark 5), at most 3n+3 SDR moves per process
	// (Corollary 4), and the per-segment rule language (Theorem 4).
	inner := newTestInner(3)
	comp := Compose(inner)
	g := graph.Ring(6)
	net := sim.NewNetwork(g)
	states := comp.EnumerateStates(0, net)
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 30; trial++ {
		cfgStates := make([]sim.State, net.N())
		for u := range cfgStates {
			cfgStates[u] = states[rng.Intn(len(states))].Clone()
		}
		start := sim.NewConfiguration(cfgStates)

		observer := NewObserver(inner, net)
		observer.Prime(start)
		daemon := sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(int64(trial))), 0.5)
		eng := sim.NewEngine(net, comp, daemon)
		eng.Run(start, sim.WithMaxSteps(50_000), sim.WithStepHook(observer.Hook()))

		if v := observer.AliveRootViolations(); v != 0 {
			t.Fatalf("trial %d: %d alive roots were created (Theorem 3)", trial, v)
		}
		if s := observer.Segments(); s > MaxSegments(net.N()) {
			t.Fatalf("trial %d: %d segments exceed the n+1 bound (Remark 5)", trial, s)
		}
		if m := observer.MaxSDRMoves(); m > MaxSDRMovesPerProcess(net.N()) {
			t.Fatalf("trial %d: a process executed %d SDR moves, exceeding 3n+3 (Corollary 4)", trial, m)
		}
		if lv := observer.LanguageViolation(); lv != "" {
			t.Fatalf("trial %d: Theorem 4 language violated: %s", trial, lv)
		}
		if got, n := len(observer.SDRMovesPerProcess()), net.N(); got != n {
			t.Fatalf("SDRMovesPerProcess has length %d, want %d", got, n)
		}
	}
}

func TestBounds(t *testing.T) {
	if MaxResetRounds(10) != 30 {
		t.Errorf("MaxResetRounds(10) = %d, want 30", MaxResetRounds(10))
	}
	if MaxSDRMovesPerProcess(10) != 33 {
		t.Errorf("MaxSDRMovesPerProcess(10) = %d, want 33", MaxSDRMovesPerProcess(10))
	}
	if MaxSegments(10) != 11 {
		t.Errorf("MaxSegments(10) = %d, want 11", MaxSegments(10))
	}
}

func TestIsSDRRuleAndInnerRuleName(t *testing.T) {
	for _, name := range []string{RuleRB, RuleRF, RuleC, RuleR} {
		if !IsSDRRule(name) {
			t.Errorf("%s should be recognised as an SDR rule", name)
		}
	}
	if IsSDRRule("tick") || IsSDRRule(InnerRuleName("tick")) {
		t.Error("inner rules must not be recognised as SDR rules")
	}
	if InnerRuleName("tick") != "I:tick" {
		t.Errorf("InnerRuleName = %q, want I:tick", InnerRuleName("tick"))
	}
}
