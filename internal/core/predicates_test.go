package core

import (
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

// pathNetwork returns a 3-process path 0-1-2 and its network.
func pathNetwork(t *testing.T) *sim.Network {
	t.Helper()
	return sim.NewNetwork(graph.Path(3))
}

// composedConfig builds a composed configuration from parallel slices of SDR
// states and inner values.
func composedConfig(t *testing.T, sdr []SDRState, values []int) *sim.Configuration {
	t.Helper()
	if len(sdr) != len(values) {
		t.Fatalf("composedConfig: %d SDR states for %d values", len(sdr), len(values))
	}
	states := make([]sim.State, len(sdr))
	for i := range sdr {
		states[i] = ComposedState{SDR: sdr[i], Inner: testInnerState{V: values[i]}}
	}
	return sim.NewConfiguration(states)
}

func allClean(n int) []SDRState {
	out := make([]SDRState, n)
	for i := range out {
		out[i] = CleanSDRState()
	}
	return out
}

func TestPClean(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(3)
	_ = inner

	clean := composedConfig(t, allClean(3), []int{0, 0, 0})
	for u := 0; u < 3; u++ {
		if !PClean(net.View(clean, u)) {
			t.Errorf("P_Clean(%d) should hold in the all-C configuration", u)
		}
	}

	// Process 1 broadcasting: P_Clean fails at 0, 1 and 2 (1 is in everyone's
	// closed neighbourhood on a path).
	dirty := composedConfig(t, []SDRState{CleanSDRState(), {St: StatusRB, D: 0}, CleanSDRState()}, []int{0, 0, 0})
	for u := 0; u < 3; u++ {
		if PClean(net.View(dirty, u)) {
			t.Errorf("P_Clean(%d) should fail when process 1 has status RB", u)
		}
	}
}

func TestPICorrectAndPCorrect(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// Clocks 0-0-2: process 1 and 2 disagree by 2, so both are I-incorrect.
	cfg := composedConfig(t, allClean(3), []int{0, 0, 2})
	if !PICorrect(inner, net.View(cfg, 0)) {
		t.Error("process 0 should be I-correct (its only neighbour is at distance 0)")
	}
	for _, u := range []int{1, 2} {
		if PICorrect(inner, net.View(cfg, u)) {
			t.Errorf("process %d should be I-incorrect", u)
		}
		if PCorrect(inner, net.View(cfg, u)) {
			t.Errorf("P_Correct(%d) should fail: status C and I-incorrect", u)
		}
	}

	// With status RB the implication P_Correct holds vacuously.
	cfg2 := composedConfig(t, []SDRState{CleanSDRState(), {St: StatusRB, D: 0}, CleanSDRState()}, []int{0, 0, 2})
	if !PCorrect(inner, net.View(cfg2, 1)) {
		t.Error("P_Correct must hold at a process whose status is not C")
	}
}

func TestPReset(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)
	cfg := composedConfig(t, allClean(3), []int{0, 3, 0})
	if !PReset(inner, net.View(cfg, 0)) || PReset(inner, net.View(cfg, 1)) {
		t.Error("P_reset must hold exactly at processes whose inner state is the reset state")
	}
}

func TestPR1(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// Process 0: status C, not reset (v=2), neighbour 1 has status RF → P_R1.
	cfg := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRF, D: 1}, CleanSDRState()},
		[]int{2, 0, 0})
	if !PR1(inner, net.View(cfg, 0)) {
		t.Error("P_R1(0) should hold: C, not reset, RF neighbour")
	}
	// Same but process 0 is in the reset state → no P_R1.
	cfg2 := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRF, D: 1}, CleanSDRState()},
		[]int{0, 0, 0})
	if PR1(inner, net.View(cfg2, 0)) {
		t.Error("P_R1(0) should fail when the process is in its reset state")
	}
	// No RF neighbour → no P_R1.
	cfg3 := composedConfig(t, allClean(3), []int{2, 0, 0})
	if PR1(inner, net.View(cfg3, 0)) {
		t.Error("P_R1(0) should fail without an RF neighbour")
	}
}

func TestPRB(t *testing.T) {
	net := pathNetwork(t)
	cfg := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRB, D: 0}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if !PRB(net.View(cfg, 0)) {
		t.Error("P_RB(0) should hold: status C with an RB neighbour")
	}
	if PRB(net.View(cfg, 1)) {
		t.Error("P_RB(1) should fail: status is not C")
	}
	if PRB(net.View(cfg, 2)) {
		t.Error("P_RB(2) should fail: status is not C")
	}
}

func TestPRF(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// Process 1 (RB@1, reset) with neighbours 0 (RB@0 ≤ 1) and 2 (RF, reset):
	// P_RF(1) holds.
	cfg := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRB, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if !PRF(inner, net.View(cfg, 1)) {
		t.Error("P_RF(1) should hold")
	}
	// A neighbour with a larger RB distance blocks the feedback.
	cfg2 := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 5}, {St: StatusRB, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if PRF(inner, net.View(cfg2, 1)) {
		t.Error("P_RF(1) should fail: neighbour 0 is broadcasting at a larger distance")
	}
	// A C neighbour blocks the feedback.
	cfg3 := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRB, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if PRF(inner, net.View(cfg3, 1)) {
		t.Error("P_RF(1) should fail: neighbour 0 still has status C")
	}
	// A non-reset process cannot start its feedback.
	cfg4 := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRB, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 3, 0})
	if PRF(inner, net.View(cfg4, 1)) {
		t.Error("P_RF(1) should fail: the process is not in its reset state")
	}
}

func TestPC(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// Process 1 (RF@1, reset) with neighbours 0 (C, reset) and 2 (RF@2 ≥ 1,
	// reset): P_C(1) holds.
	cfg := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRF, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if !PC(inner, net.View(cfg, 1)) {
		t.Error("P_C(1) should hold")
	}
	// An RF neighbour with a smaller distance blocks the completion.
	cfg2 := composedConfig(t,
		[]SDRState{{St: StatusRF, D: 0}, {St: StatusRF, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if PC(inner, net.View(cfg2, 1)) {
		t.Error("P_C(1) should fail: neighbour 0 is an RF at a smaller distance")
	}
	// A neighbour that is not in its reset state blocks the completion.
	cfg3 := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRF, D: 1}, {St: StatusRF, D: 2}},
		[]int{4, 0, 0})
	if PC(inner, net.View(cfg3, 1)) {
		t.Error("P_C(1) should fail: neighbour 0 is not in its reset state")
	}
	// An RB neighbour blocks the completion.
	cfg4 := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRF, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if PC(inner, net.View(cfg4, 1)) {
		t.Error("P_C(1) should fail: neighbour 0 is still broadcasting")
	}
}

func TestPR2(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)
	cfg := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRF, D: 1}, CleanSDRState()},
		[]int{3, 0, 3})
	if !PR2(inner, net.View(cfg, 0)) {
		t.Error("P_R2(0) should hold: status RB but not in the reset state")
	}
	if PR2(inner, net.View(cfg, 1)) {
		t.Error("P_R2(1) should fail: the process is in its reset state")
	}
	if PR2(inner, net.View(cfg, 2)) {
		t.Error("P_R2(2) should fail: status C")
	}
}

func TestPUp(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// I-incorrect process with no broadcasting neighbour must start a reset.
	cfg := composedConfig(t, allClean(3), []int{0, 0, 2})
	if !PUp(inner, net.View(cfg, 2)) {
		t.Error("P_Up(2) should hold: locally incorrect, no RB neighbour")
	}
	// The same process with a broadcasting neighbour joins instead (P_RB
	// suppresses P_Up).
	cfg2 := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRB, D: 0}, CleanSDRState()},
		[]int{0, 0, 2})
	if PUp(inner, net.View(cfg2, 2)) {
		t.Error("P_Up(2) should fail when a neighbour is already broadcasting")
	}
	// A locally correct, clean process must not start a reset.
	cfg3 := composedConfig(t, allClean(3), []int{0, 0, 0})
	for u := 0; u < 3; u++ {
		if PUp(inner, net.View(cfg3, u)) {
			t.Errorf("P_Up(%d) should fail in a correct configuration", u)
		}
	}
}

func TestRootsAndNormal(t *testing.T) {
	net := pathNetwork(t)
	inner := newTestInner(5)

	// A broadcasting local minimum is an alive root; an RF local minimum with
	// non-C neighbours at larger distances is a dead root.
	cfg := composedConfig(t,
		[]SDRState{{St: StatusRB, D: 0}, {St: StatusRB, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if !PRoot(net.View(cfg, 0)) || !IsAliveRoot(inner, net.View(cfg, 0)) {
		t.Error("process 0 should be an alive root")
	}
	if IsAliveRoot(inner, net.View(cfg, 1)) {
		t.Error("process 1 should not be an alive root (its neighbour 0 broadcasts at a smaller distance)")
	}
	if got := AliveRoots(inner, net, cfg); len(got) != 1 || got[0] != 0 {
		t.Errorf("AliveRoots = %v, want [0]", got)
	}

	dead := composedConfig(t,
		[]SDRState{CleanSDRState(), {St: StatusRF, D: 1}, {St: StatusRF, D: 2}},
		[]int{0, 0, 0})
	if !IsDeadRoot(net.View(dead, 1)) {
		t.Error("process 1 should be a dead root")
	}
	if IsDeadRoot(net.View(dead, 2)) {
		t.Error("process 2 should not be a dead root (neighbour 1 has a smaller distance)")
	}
	if got := DeadRoots(net, dead); len(got) != 1 || got[0] != 1 {
		t.Errorf("DeadRoots = %v, want [1]", got)
	}

	// Normal configurations: clean everywhere and I-correct everywhere.
	if Normal(inner, net, cfg) {
		t.Error("a configuration with broadcasting processes is not normal")
	}
	good := composedConfig(t, allClean(3), []int{1, 1, 2})
	if !Normal(inner, net, good) {
		t.Error("an all-C, locally correct configuration is normal")
	}
	bad := composedConfig(t, allClean(3), []int{0, 2, 2})
	if Normal(inner, net, bad) {
		t.Error("an I-incorrect configuration is not normal")
	}
	if !NormalPredicate(inner, net)(good) || NormalPredicate(inner, net)(bad) {
		t.Error("NormalPredicate must agree with Normal")
	}
}

func TestTerminalIffNormal(t *testing.T) {
	// Theorem 1: a configuration is terminal for SDR (no SDR rule enabled,
	// and since inner rules are guarded by P_Clean ∧ P_ICorrect, the composed
	// configuration may only have inner rules enabled) iff it is normal.
	// Here we check the composed algorithm: a normal configuration has no SDR
	// rule enabled, and every non-normal configuration has some rule enabled.
	inner := newTestInner(2)
	comp := Compose(inner)
	net := pathNetwork(t)

	normal := composedConfig(t, allClean(3), []int{1, 1, 1})
	for u := 0; u < 3; u++ {
		for _, ri := range sim.EnabledRules(comp, net, normal, u) {
			name := comp.Rules()[ri].Name
			if IsSDRRule(name) {
				t.Errorf("SDR rule %s enabled at %d in a normal configuration", name, u)
			}
		}
	}

	// Enumerate a slice of the composed state space and check the
	// characterisation on every sampled configuration.
	states := comp.EnumerateStates(0, net)
	if len(states) == 0 {
		t.Fatal("composed algorithm should enumerate states")
	}
	checked := 0
	for i := 0; i < len(states); i += 7 {
		for j := 0; j < len(states); j += 11 {
			for k := 0; k < len(states); k += 13 {
				cfg := sim.NewConfiguration([]sim.State{states[i].Clone(), states[j].Clone(), states[k].Clone()})
				terminalForSDR := true
				for u := 0; u < 3; u++ {
					for _, ri := range sim.EnabledRules(comp, net, cfg, u) {
						if IsSDRRule(comp.Rules()[ri].Name) {
							terminalForSDR = false
						}
					}
				}
				if terminalForSDR != Normal(inner, net, cfg) {
					t.Fatalf("Theorem 1 violated at %s: terminal-for-SDR=%v, normal=%v",
						cfg, terminalForSDR, Normal(inner, net, cfg))
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no configurations checked")
	}
}
