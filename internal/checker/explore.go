package checker

import (
	"fmt"
	"sync"

	"sdr/internal/sim"
)

// ExploreOptions bounds an exhaustive exploration.
type ExploreOptions struct {
	// MaxConfigurations caps the number of distinct configurations explored;
	// 0 means DefaultMaxConfigurations. The cap is enforced when
	// configurations are *added*, so the explored set never exceeds it (a
	// successor that would overflow the cap is dropped and the exploration is
	// reported as incomplete).
	MaxConfigurations int
	// MaxSelectionSize caps the size of the daemon selections that are
	// branched on; 0 means no cap (every non-empty subset of the enabled set
	// is explored, which is exact but exponential in the enabled-set size).
	// With a cap k, verdicts certify convergence under every daemon that
	// activates at most k processes per step (k = 1 is the central daemon).
	MaxSelectionSize int
	// Legitimate is the legitimacy predicate. Legitimate configurations are
	// not required to be terminal; convergence means every cycle of the
	// reachable transition graph goes through a legitimate configuration.
	Legitimate sim.Predicate
	// Invariant, when non-nil, must hold in every reachable configuration.
	Invariant sim.Predicate
	// TerminalOK, when non-nil, must hold in every reachable terminal
	// configuration.
	TerminalOK sim.Predicate
	// Workers bounds the number of goroutines expanding the BFS frontier;
	// values ≤ 1 explore sequentially. The frontier is expanded level by
	// level and merged in deterministic order, so reports and verdicts are
	// bit-identical for every worker count. With Workers > 1 the algorithm's
	// rule guards/actions and the Legitimate/Invariant/TerminalOK predicates
	// are evaluated from multiple goroutines and must be safe for concurrent
	// use — pure functions of the configuration, as every algorithm and
	// predicate in this repository is.
	Workers int
	// Progress, when non-nil, is invoked after every completed BFS level
	// with the running coverage counters.
	Progress func(ExploreProgress)
}

// DefaultMaxConfigurations bounds explorations when the caller does not.
const DefaultMaxConfigurations = 200_000

// ExploreProgress is the per-level progress snapshot handed to
// ExploreOptions.Progress.
type ExploreProgress struct {
	// Depth is the number of fully expanded BFS levels.
	Depth int
	// Configurations and Transitions are the running totals.
	Configurations int
	Transitions    int
	// Frontier is the size of the next level still to expand.
	Frontier int
}

// ExploreReport summarises an exhaustive exploration.
type ExploreReport struct {
	// Configurations is the number of distinct configurations reached. It
	// never exceeds the configured MaxConfigurations.
	Configurations int
	// Transitions is the number of explored steps (edges).
	Transitions int
	// Complete reports whether the whole reachable space was explored (false
	// when MaxConfigurations was hit, or when the exploration aborted on a
	// mid-exploration violation; a post-exploration verdict error — an
	// illegitimate cycle or terminal — leaves Complete true, since the space
	// was fully covered).
	Complete bool
	// Depth is the number of fully expanded BFS levels: after Depth levels,
	// every configuration within Depth-1 daemon steps of a start has been
	// expanded and every one at distance Depth has been discovered.
	Depth int
	// TerminalConfigurations counts reachable terminal configurations.
	TerminalConfigurations int
	// LegitimateConfigurations counts reachable legitimate configurations.
	LegitimateConfigurations int
	// CappedSelections counts expanded configurations whose enabled set was
	// larger than MaxSelectionSize, i.e. where the exploration branched on a
	// strict subset of the daemon's choices. 0 means the exploration was
	// exact for the fully distributed unfair daemon.
	CappedSelections int
	// DistinctLocalStates is the number of distinct per-process states the
	// key interner observed, a coverage measure of the local state space.
	DistinctLocalStates int
}

// succ is one successor generated while expanding a configuration: its key,
// the configuration itself, the visited index when the worker pre-resolved it
// against the already-merged levels (-1 when unknown), and its legitimacy
// (evaluated only when the successor was not pre-resolved).
type succ struct {
	key   string
	cfg   *sim.Configuration
	idx   int
	legit bool
}

// expansion is the result of expanding one frontier configuration.
type expansion struct {
	terminal bool
	capped   bool
	err      error
	succs    []succ
}

// Explore exhaustively explores the configurations reachable from the given
// starting configurations under every daemon choice (every non-empty subset
// of the enabled set, capped by MaxSelectionSize) and verifies:
//
//   - Invariant holds everywhere (when provided);
//   - TerminalOK holds at every terminal configuration (when provided);
//   - when Legitimate is provided, there is no cycle consisting solely of
//     illegitimate configurations, and no illegitimate terminal
//     configuration — together these imply that every execution reaches the
//     legitimate set, i.e. convergence under the distributed unfair daemon
//     restricted to the explored space (and to daemons activating at most
//     MaxSelectionSize processes per step when a cap is set).
//
// The exploration requires the algorithm's rules to be pairwise mutually
// exclusive per process (at most one enabled rule per process), which is the
// case for SDR compositions (Lemma 5, Remark 2); it returns an error
// otherwise so that results are never silently unsound.
//
// The frontier is expanded level by level: with Workers > 1 the guard
// evaluation, successor construction and key interning of one level are
// fanned out over a bounded worker pool, and the results are merged
// sequentially in frontier order, so every report, verdict and error is
// bit-identical to the sequential exploration.
func Explore(net *sim.Network, alg sim.Algorithm, starts []*sim.Configuration, opts ExploreOptions) (ExploreReport, error) {
	report := ExploreReport{Complete: true}
	maxConfigs := opts.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	// The interner maps each distinct local state to a small integer once, so
	// visited keys are a few bytes per process instead of full rendered state
	// strings; its id table is internally synchronised, so workers intern
	// concurrently through AppendKey with per-worker buffers. Guard
	// evaluation goes through a single Evaluator shared with the engine's
	// code path, so the rule set is fetched once for the whole exploration;
	// the Evaluator is immutable and shared by all workers.
	//
	// On top of it, each worker owns a MemoEvaluator: distinct configurations
	// share most of their local neighbourhoods, so exploration re-asks the
	// same (neighbourhood → enabled rules) questions constantly, and the memo
	// tables answer repeats with a map probe instead of a guard scan. The
	// share's interner doubles as the configuration-key interner, so both key
	// spaces use the same state ids. Memoized masks are pure functions of the
	// neighbourhood, so reports, verdicts and errors are unchanged — the
	// per-worker-count bit-identity guarantee is unaffected. Algorithms whose
	// rule set cannot be memoized (nil MemoEvaluator) fall back to the direct
	// evaluator.
	share := sim.NewMemoShare(0)
	interner := share.Interner()
	ev := sim.NewEvaluator(alg, net)
	newMemo := func() *sim.MemoEvaluator { return sim.NewMemoEvaluator(ev, share) }
	visited := make(map[string]int)
	var configs []*sim.Configuration
	var succs [][]int
	var terminal []bool
	var legit []bool
	truncated := false

	// addConfig interns c and returns its node index; fresh reports whether
	// the configuration was new, ok whether it was (or already is) within the
	// configuration cap. Dropping a fresh configuration marks the exploration
	// truncated; the explored set never exceeds maxConfigs.
	addConfig := func(c *sim.Configuration, key string, isLegit bool) (idx int, fresh, ok bool) {
		if idx, ok := visited[key]; ok {
			return idx, false, true
		}
		if len(configs) >= maxConfigs {
			truncated = true
			return -1, false, false
		}
		idx = len(configs)
		visited[key] = idx
		configs = append(configs, c)
		succs = append(succs, nil)
		terminal = append(terminal, false)
		legit = append(legit, isLegit)
		return idx, true, true
	}

	// finalize settles the report's coverage fields from the current
	// exploration state; complete reports whether the reachable space was
	// fully covered (false on truncation and on mid-exploration aborts).
	depth := 0
	finalize := func(complete bool) {
		report.Complete = complete
		report.Depth = depth
		report.Configurations = len(configs)
		report.DistinctLocalStates = interner.States()
		report.LegitimateConfigurations = 0
		for _, l := range legit {
			if l {
				report.LegitimateConfigurations++
			}
		}
	}

	var keyBuf []byte
	var queue []int
	for _, s := range starts {
		c := s.Clone()
		var key string
		key, keyBuf = interner.AppendKey(keyBuf, c)
		isLegit := opts.Legitimate != nil && opts.Legitimate(c)
		idx, fresh, ok := addConfig(c, key, isLegit)
		if !ok {
			break
		}
		if fresh {
			queue = append(queue, idx)
		}
	}

	// expand computes the full expansion of one configuration: predicate
	// checks, terminal detection, the mutual-exclusion sanity check and every
	// capped-selection successor with its interned key. It reads only
	// immutable shared state (configs of already-merged levels, the network,
	// the evaluator) plus the caller-owned scratch buffers, so the frontier
	// can be expanded concurrently.
	expand := func(idx int, memo *sim.MemoEvaluator, enabledBuf, rulesBuf, selScratch []int, buf []byte) (expansion, []int, []int, []int, []byte) {
		c := configs[idx]
		var ex expansion

		if opts.Invariant != nil && !opts.Invariant(c) {
			ex.err = fmt.Errorf("checker: invariant violated in reachable configuration %s", c)
			return ex, enabledBuf, rulesBuf, selScratch, buf
		}

		// Every expansion looks at a different configuration, so the memo's
		// per-process state-id mirror is revalidated wholesale; the tables
		// themselves carry over (the exploration's whole point).
		var enabled []int
		if memo != nil {
			memo.InvalidateAll()
			enabled = memo.AppendEnabled(enabledBuf[:0], c)
		} else {
			enabled = ev.AppendEnabled(enabledBuf[:0], c)
		}
		enabledBuf = enabled
		if len(enabled) == 0 {
			ex.terminal = true
			if opts.TerminalOK != nil && !opts.TerminalOK(c) {
				ex.err = fmt.Errorf("checker: terminal configuration violates the terminal predicate: %s", c)
			}
			return ex, enabledBuf, rulesBuf, selScratch, buf
		}

		// Mutual-exclusion sanity check: at most one rule enabled per process.
		for _, u := range enabled {
			if memo != nil {
				rulesBuf = memo.AppendEnabledRules(rulesBuf[:0], c, u)
			} else {
				rulesBuf = ev.AppendEnabledRules(rulesBuf[:0], c, u)
			}
			if len(rulesBuf) > 1 {
				ex.err = fmt.Errorf("checker: process %d has %d enabled rules in %s; exploration requires mutually exclusive rules", u, len(rulesBuf), c)
				return ex, enabledBuf, rulesBuf, selScratch, buf
			}
		}

		ex.capped = opts.MaxSelectionSize > 0 && len(enabled) > opts.MaxSelectionSize
		selScratch = forEachSelection(enabled, opts.MaxSelectionSize, selScratch, func(sel []int) {
			next := applyStep(ev, memo, c, sel)
			var key string
			key, buf = interner.AppendKey(buf, next)
			s := succ{key: key, cfg: next, idx: -1}
			if prev, ok := visited[key]; ok {
				// Already merged in an earlier level; the merge phase skips
				// the map lookup. Successors first seen in the current level
				// stay unresolved and are deduplicated during the merge.
				s.idx = prev
			} else {
				s.legit = opts.Legitimate != nil && opts.Legitimate(next)
			}
			ex.succs = append(ex.succs, s)
		})
		return ex, enabledBuf, rulesBuf, selScratch, buf
	}

	// One memo evaluator per potential worker, created once so the tables
	// accumulate across BFS levels (evaluator 0 doubles as the sequential
	// path's). A MemoEvaluator is single-goroutine state; only the share
	// behind them is synchronised.
	memos := make([]*sim.MemoEvaluator, workers)
	for i := range memos {
		memos[i] = newMemo()
	}

	expansions := make([]expansion, 0, len(queue))
	for len(queue) > 0 && !truncated {
		level := queue
		queue = nil
		if cap(expansions) < len(level) {
			expansions = make([]expansion, len(level))
		}
		expansions = expansions[:len(level)]

		if w := min(workers, len(level)); w <= 1 {
			var enabledBuf, rulesBuf, selScratch []int
			for i, idx := range level {
				expansions[i], enabledBuf, rulesBuf, selScratch, keyBuf =
					expand(idx, memos[0], enabledBuf, rulesBuf, selScratch, keyBuf)
			}
		} else {
			// Fan the level out over the worker pool, strided so assignment
			// needs no coordination. Workers only read already-merged shared
			// state; each owns its scratch buffers and memo evaluator, and the
			// interner is internally synchronised.
			var wg sync.WaitGroup
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var enabledBuf, rulesBuf, selScratch []int
					var buf []byte
					for i := g; i < len(level); i += w {
						expansions[i], enabledBuf, rulesBuf, selScratch, buf =
							expand(level[i], memos[g], enabledBuf, rulesBuf, selScratch, buf)
					}
				}(g)
			}
			wg.Wait()
		}

		// Deterministic merge, in frontier order then selection order: the
		// exact order the sequential exploration discovers configurations in,
		// so node indices, counters, truncation points and error choices are
		// identical for every worker count.
		for i, idx := range level {
			ex := &expansions[i]
			if ex.err != nil {
				// Aborted mid-exploration: the report carries the coverage
				// reached so far, and Complete=false records that the
				// reachable space was not fully explored.
				finalize(false)
				return report, ex.err
			}
			terminal[idx] = ex.terminal
			if ex.terminal {
				report.TerminalConfigurations++
				continue
			}
			if ex.capped {
				report.CappedSelections++
			}
			for _, s := range ex.succs {
				nIdx, fresh := s.idx, false
				if nIdx < 0 {
					var ok bool
					nIdx, fresh, ok = addConfig(s.cfg, s.key, s.legit)
					if !ok {
						// The configuration cap is reached: drop the successor
						// and stop exploring. Transitions to dropped
						// configurations are not counted.
						break
					}
				}
				succs[idx] = append(succs[idx], nIdx)
				report.Transitions++
				if fresh {
					queue = append(queue, nIdx)
				}
			}
			if truncated {
				break
			}
		}
		if truncated {
			// A truncated level was only partially applied: it neither
			// counts as fully expanded nor emits a progress snapshot, so the
			// progress stream is exactly one callback per completed level.
			break
		}
		depth++
		if opts.Progress != nil {
			opts.Progress(ExploreProgress{
				Depth:          depth,
				Configurations: len(configs),
				Transitions:    report.Transitions,
				Frontier:       len(queue),
			})
		}
	}

	finalize(!truncated)

	if opts.Legitimate != nil && report.Complete {
		if cycleNode := findIllegitimateCycle(succs, legit); cycleNode >= 0 {
			return report, fmt.Errorf("checker: cycle of illegitimate configurations through %s — the algorithm can avoid the legitimate set forever", configs[cycleNode])
		}
		// Illegitimate terminal configurations.
		for idx, c := range configs {
			if terminal[idx] && !legit[idx] {
				return report, fmt.Errorf("checker: illegitimate terminal configuration %s", c)
			}
		}
	}
	return report, nil
}

// forEachSelection calls fn for every non-empty subset of enabled whose size
// is at most maxSize (0 = no cap), enumerating directly — subsets of size 1,
// then 2, … in lexicographic position order — so the work is proportional to
// the number of emitted selections, not to 2^|enabled|. The selection slice
// handed to fn is reused across calls; fn must not retain it. scratch is a
// reusable buffer returned for the next call.
func forEachSelection(enabled []int, maxSize int, scratch []int, fn func(sel []int)) []int {
	n := len(enabled)
	k := maxSize
	if k <= 0 || k > n {
		k = n
	}
	// scratch holds the position indices (first k entries) and the rendered
	// selection (next k entries).
	if cap(scratch) < 2*k {
		scratch = make([]int, 2*k)
	}
	scratch = scratch[:2*k]
	idx, sel := scratch[:k], scratch[k:]
	for size := 1; size <= k; size++ {
		pos := idx[:size]
		for i := range pos {
			pos[i] = i
		}
		for {
			out := sel[:size]
			for i, p := range pos {
				out[i] = enabled[p]
			}
			fn(out)
			// Advance to the next size-`size` combination.
			i := size - 1
			for i >= 0 && pos[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			pos[i]++
			for j := i + 1; j < size; j++ {
				pos[j] = pos[j-1] + 1
			}
		}
	}
	return scratch
}

// applyStep applies a composite-atomicity step in which exactly the selected
// processes execute their (single) enabled rule. With a memo evaluator, the
// rule is read from the cached mask (the caller has just synchronised the
// memo against c); the action itself always evaluates directly.
func applyStep(ev *sim.Evaluator, memo *sim.MemoEvaluator, c *sim.Configuration, selected []int) *sim.Configuration {
	states := make([]sim.State, c.N())
	for u := 0; u < c.N(); u++ {
		states[u] = c.State(u)
	}
	next := sim.NewConfiguration(states)
	net, rules := ev.Network(), ev.Rules()
	for _, u := range selected {
		if memo != nil {
			if ri := memo.FirstEnabledRule(c, u); ri >= 0 {
				next.SetState(u, rules[ri].Action(net.View(c, u)))
			}
			continue
		}
		v := net.View(c, u)
		for i := range rules {
			if rules[i].Guard(v) {
				next.SetState(u, rules[i].Action(v))
				break
			}
		}
	}
	return next
}

// findIllegitimateCycle looks for a cycle in the transition graph restricted
// to illegitimate nodes; it returns the index of a node on such a cycle, or
// -1 when none exists. Iterative three-colour DFS.
func findIllegitimateCycle(succs [][]int, legit []bool) int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]int, len(succs))
	type frame struct {
		node int
		next int
	}
	for start := range succs {
		if legit[start] || colour[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		colour[start] = grey
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.next < len(succs[top.node]) {
				child := succs[top.node][top.next]
				top.next++
				if legit[child] {
					continue
				}
				switch colour[child] {
				case white:
					colour[child] = grey
					stack = append(stack, frame{node: child})
				case grey:
					return child
				}
				continue
			}
			colour[top.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return -1
}
