package checker

import (
	"fmt"

	"sdr/internal/sim"
)

// ExploreOptions bounds an exhaustive exploration.
type ExploreOptions struct {
	// MaxConfigurations caps the number of distinct configurations explored;
	// 0 means DefaultMaxConfigurations.
	MaxConfigurations int
	// MaxSelectionSize caps the size of the daemon selections that are
	// branched on; 0 means no cap (every non-empty subset of the enabled set
	// is explored, which is exact but exponential in the enabled-set size).
	MaxSelectionSize int
	// Legitimate is the legitimacy predicate. Legitimate configurations are
	// not required to be terminal; convergence means every cycle of the
	// reachable transition graph goes through a legitimate configuration.
	Legitimate sim.Predicate
	// Invariant, when non-nil, must hold in every reachable configuration.
	Invariant sim.Predicate
	// TerminalOK, when non-nil, must hold in every reachable terminal
	// configuration.
	TerminalOK sim.Predicate
}

// DefaultMaxConfigurations bounds explorations when the caller does not.
const DefaultMaxConfigurations = 200_000

// ExploreReport summarises an exhaustive exploration.
type ExploreReport struct {
	// Configurations is the number of distinct configurations reached.
	Configurations int
	// Transitions is the number of explored steps (edges).
	Transitions int
	// Complete reports whether the whole reachable space was explored
	// (false when MaxConfigurations was hit).
	Complete bool
	// TerminalConfigurations counts reachable terminal configurations.
	TerminalConfigurations int
	// LegitimateConfigurations counts reachable legitimate configurations.
	LegitimateConfigurations int
}

// Explore exhaustively explores the configurations reachable from the given
// starting configurations under every daemon choice (every non-empty subset
// of the enabled set, capped by MaxSelectionSize) and verifies:
//
//   - Invariant holds everywhere (when provided);
//   - TerminalOK holds at every terminal configuration (when provided);
//   - when Legitimate is provided, there is no cycle consisting solely of
//     illegitimate configurations, and no illegitimate terminal
//     configuration — together these imply that every execution reaches the
//     legitimate set, i.e. convergence under the distributed unfair daemon
//     restricted to the explored space.
//
// The exploration requires the algorithm's rules to be pairwise mutually
// exclusive per process (at most one enabled rule per process), which is the
// case for SDR compositions (Lemma 5, Remark 2); it returns an error
// otherwise so that results are never silently unsound.
func Explore(net *sim.Network, alg sim.Algorithm, starts []*sim.Configuration, opts ExploreOptions) (ExploreReport, error) {
	report := ExploreReport{Complete: true}
	maxConfigs := opts.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}

	// visited maps interned configuration keys to node indices. The interner
	// maps each distinct local state to a small integer once, so keys are a
	// few bytes per process instead of the full rendered state strings that
	// the deprecated Configuration.Key would concatenate for every visited
	// configuration. Guard evaluation goes through a single Evaluator shared
	// with the engine's code path, so the rule set is fetched once for the
	// whole exploration.
	interner := sim.NewKeyInterner()
	ev := sim.NewEvaluator(alg, net)
	visited := make(map[string]int)
	var configs []*sim.Configuration
	var succs [][]int
	legit := []bool{}

	addConfig := func(c *sim.Configuration) (int, bool) {
		key := interner.Key(c)
		if idx, ok := visited[key]; ok {
			return idx, false
		}
		idx := len(configs)
		visited[key] = idx
		configs = append(configs, c)
		succs = append(succs, nil)
		legit = append(legit, opts.Legitimate != nil && opts.Legitimate(c))
		return idx, true
	}

	// Scratch buffers reused across the BFS: both are transient within one
	// loop iteration (enumerateSelections copies the enabled values out).
	var enabledBuf, rulesBuf []int

	var queue []int
	for _, s := range starts {
		idx, fresh := addConfig(s.Clone())
		if fresh {
			queue = append(queue, idx)
		}
	}

	for len(queue) > 0 {
		if len(configs) > maxConfigs {
			report.Complete = false
			break
		}
		idx := queue[0]
		queue = queue[1:]
		c := configs[idx]

		if opts.Invariant != nil && !opts.Invariant(c) {
			return report, fmt.Errorf("checker: invariant violated in reachable configuration %s", c)
		}

		enabled := ev.AppendEnabled(enabledBuf[:0], c)
		enabledBuf = enabled
		if len(enabled) == 0 {
			report.TerminalConfigurations++
			if opts.TerminalOK != nil && !opts.TerminalOK(c) {
				return report, fmt.Errorf("checker: terminal configuration violates the terminal predicate: %s", c)
			}
			continue
		}

		// Mutual-exclusion sanity check: at most one rule enabled per process.
		for _, u := range enabled {
			rulesBuf = ev.AppendEnabledRules(rulesBuf[:0], c, u)
			if rules := rulesBuf; len(rules) > 1 {
				return report, fmt.Errorf("checker: process %d has %d enabled rules in %s; exploration requires mutually exclusive rules", u, len(rules), c)
			}
		}

		selections := enumerateSelections(enabled, opts.MaxSelectionSize)
		for _, sel := range selections {
			next := applyStep(alg, net, c, sel)
			nIdx, fresh := addConfig(next)
			succs[idx] = append(succs[idx], nIdx)
			report.Transitions++
			if fresh {
				queue = append(queue, nIdx)
			}
		}
	}

	report.Configurations = len(configs)
	for _, l := range legit {
		if l {
			report.LegitimateConfigurations++
		}
	}

	if opts.Legitimate != nil && report.Complete {
		if cycleNode := findIllegitimateCycle(succs, legit); cycleNode >= 0 {
			return report, fmt.Errorf("checker: cycle of illegitimate configurations through %s — the algorithm can avoid the legitimate set forever", configs[cycleNode])
		}
		// Illegitimate terminal configurations.
		for idx, c := range configs {
			if len(succs[idx]) == 0 && !legit[idx] && ev.Terminal(c) {
				return report, fmt.Errorf("checker: illegitimate terminal configuration %s", c)
			}
		}
	}
	return report, nil
}

// enumerateSelections returns every non-empty subset of enabled whose size is
// at most maxSize (0 = no cap).
func enumerateSelections(enabled []int, maxSize int) [][]int {
	n := len(enabled)
	var out [][]int
	for mask := 1; mask < (1 << uint(n)); mask++ {
		var sel []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sel = append(sel, enabled[i])
			}
		}
		if maxSize > 0 && len(sel) > maxSize {
			continue
		}
		out = append(out, sel)
	}
	return out
}

// applyStep applies a composite-atomicity step in which exactly the selected
// processes execute their (single) enabled rule.
func applyStep(alg sim.Algorithm, net *sim.Network, c *sim.Configuration, selected []int) *sim.Configuration {
	states := make([]sim.State, c.N())
	for u := 0; u < c.N(); u++ {
		states[u] = c.State(u)
	}
	next := sim.NewConfiguration(states)
	for _, u := range selected {
		v := net.View(c, u)
		for _, r := range alg.Rules() {
			if r.Guard(v) {
				next.SetState(u, r.Action(v))
				break
			}
		}
	}
	return next
}

// findIllegitimateCycle looks for a cycle in the transition graph restricted
// to illegitimate nodes; it returns the index of a node on such a cycle, or
// -1 when none exists. Iterative three-colour DFS.
func findIllegitimateCycle(succs [][]int, legit []bool) int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]int, len(succs))
	type frame struct {
		node int
		next int
	}
	for start := range succs {
		if legit[start] || colour[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		colour[start] = grey
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.next < len(succs[top.node]) {
				child := succs[top.node][top.next]
				top.next++
				if legit[child] {
					continue
				}
				switch colour[child] {
				case white:
					colour[child] = grey
					stack = append(stack, frame{node: child})
				case grey:
					return child
				}
				continue
			}
			colour[top.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return -1
}
