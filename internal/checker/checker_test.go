package checker

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

// counterState and counterAlg form a tiny test algorithm: every process holds
// a counter; a process may increment while it is below the minimum of its
// neighbours plus one, up to a cap. From any configuration the algorithm
// converges to the all-cap configuration when the cap is reachable.
type counterState struct{ V int }

func (s counterState) Clone() sim.State { return s }
func (s counterState) Equal(o sim.State) bool {
	os, ok := o.(counterState)
	return ok && os == s
}
func (s counterState) String() string {
	digits := "0123456789"
	if s.V < 10 {
		return "v=" + string(digits[s.V])
	}
	return "v=" + string(digits[s.V/10]) + string(digits[s.V%10])
}

type counterAlg struct{ cap int }

func (a counterAlg) Name() string { return "counter" }
func (a counterAlg) InitialState(int, *sim.Network) sim.State {
	return counterState{V: 0}
}
func (a counterAlg) EnumerateStates(int, *sim.Network) []sim.State {
	out := make([]sim.State, 0, a.cap+1)
	for v := 0; v <= a.cap; v++ {
		out = append(out, counterState{V: v})
	}
	return out
}
func (a counterAlg) Rules() []sim.Rule {
	return []sim.Rule{{
		Name: "inc",
		Guard: func(v sim.View) bool {
			self := v.Self().(counterState).V
			if self >= a.cap {
				return false
			}
			return v.AllNeighbors(func(s sim.State) bool { return s.(counterState).V >= self })
		},
		Action: func(v sim.View) sim.State {
			return counterState{V: v.Self().(counterState).V + 1}
		},
	}}
}

var (
	_ sim.Algorithm  = counterAlg{}
	_ sim.Enumerable = counterAlg{}
)

// flipFlopAlg never converges: a single process toggles between two states.
type flipFlopAlg struct{}

func (flipFlopAlg) Name() string                             { return "flipflop" }
func (flipFlopAlg) InitialState(int, *sim.Network) sim.State { return counterState{V: 0} }
func (flipFlopAlg) EnumerateStates(int, *sim.Network) []sim.State {
	return []sim.State{counterState{V: 0}, counterState{V: 1}}
}
func (flipFlopAlg) Rules() []sim.Rule {
	return []sim.Rule{{
		Name:  "flip",
		Guard: func(sim.View) bool { return true },
		Action: func(v sim.View) sim.State {
			return counterState{V: 1 - v.Self().(counterState).V}
		},
	}}
}

var _ sim.Algorithm = flipFlopAlg{}

func allAtCap(capValue, n int) sim.Predicate {
	return func(c *sim.Configuration) bool {
		for u := 0; u < n; u++ {
			if c.State(u).(counterState).V != capValue {
				return false
			}
		}
		return true
	}
}

func TestCheckClosure(t *testing.T) {
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 3}

	// "All counters ≥ 0" is trivially closed.
	nonNegative := func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if c.State(u).(counterState).V < 0 {
				return false
			}
		}
		return true
	}
	start := sim.InitialConfiguration(alg, net)
	if err := CheckClosure(net, alg, sim.SynchronousDaemon{}, start, nonNegative, 1000); err != nil {
		t.Errorf("a trivially closed predicate was reported as violated: %v", err)
	}

	// "All counters = 0" is violated by the first step.
	allZero := allAtCap(0, g.N())
	if err := CheckClosure(net, alg, sim.SynchronousDaemon{}, start, allZero, 1000); err == nil {
		t.Error("a non-closed predicate must be reported")
	}

	// Starting outside the predicate is itself an error.
	if err := CheckClosure(net, alg, sim.SynchronousDaemon{}, start, allAtCap(3, g.N()), 1000); err == nil {
		t.Error("a start outside the predicate must be rejected")
	}
}

func TestCheckInvariant(t *testing.T) {
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 2}
	start := sim.InitialConfiguration(alg, net)

	within := func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if v := c.State(u).(counterState).V; v < 0 || v > 2 {
				return false
			}
		}
		return true
	}
	if err := CheckInvariant(net, alg, sim.SynchronousDaemon{}, start, within, 1000); err != nil {
		t.Errorf("the cap invariant holds: %v", err)
	}
	below2 := func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if c.State(u).(counterState).V >= 2 {
				return false
			}
		}
		return true
	}
	if err := CheckInvariant(net, alg, sim.SynchronousDaemon{}, start, below2, 1000); err == nil {
		t.Error("an invariant that eventually breaks must be reported")
	}
	if err := CheckInvariant(net, alg, sim.SynchronousDaemon{}, start, allAtCap(2, g.N()), 1000); err == nil {
		t.Error("an invariant violated at the start must be reported")
	}
}

func TestConvergenceSample(t *testing.T) {
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 3}
	factory := sim.DaemonFactory{
		Name: "distributed-random",
		New: func(seed int64) sim.Daemon {
			return sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		},
	}
	buildStart := func(rng *rand.Rand) *sim.Configuration {
		states := make([]sim.State, g.N())
		for u := range states {
			states[u] = counterState{V: rng.Intn(3)}
		}
		return sim.NewConfiguration(states)
	}
	if err := ConvergenceSample(net, alg, factory, buildStart, allAtCap(3, g.N()), 5, 10_000, 1); err != nil {
		t.Errorf("the counter algorithm converges to the all-cap configuration: %v", err)
	}
	// An unreachable target must be reported.
	if err := ConvergenceSample(net, alg, factory, buildStart, allAtCap(9, g.N()), 2, 1_000, 1); err == nil {
		t.Error("an unreachable legitimate set must be reported")
	}
}

func TestExploreConvergence(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 2}

	var starts []*sim.Configuration
	for a := 0; a <= 2; a++ {
		for b := 0; b <= 2; b++ {
			starts = append(starts, sim.NewConfiguration([]sim.State{counterState{V: a}, counterState{V: b}}))
		}
	}
	report, err := Explore(net, alg, starts, ExploreOptions{
		Legitimate: allAtCap(2, g.N()),
		Invariant: func(c *sim.Configuration) bool {
			return c.State(0).(counterState).V <= 2 && c.State(1).(counterState).V <= 2
		},
		TerminalOK: allAtCap(2, g.N()),
	})
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	if !report.Complete {
		t.Error("the tiny state space must be explored completely")
	}
	if report.Configurations != 9 {
		t.Errorf("explored %d configurations, want 9", report.Configurations)
	}
	if report.TerminalConfigurations != 1 {
		t.Errorf("found %d terminal configurations, want exactly the all-cap one", report.TerminalConfigurations)
	}
	if report.LegitimateConfigurations != 1 {
		t.Errorf("found %d legitimate configurations, want 1", report.LegitimateConfigurations)
	}
}

func TestExploreDetectsIllegitimateCycle(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := flipFlopAlg{}
	starts := []*sim.Configuration{sim.NewConfiguration([]sim.State{counterState{V: 0}, counterState{V: 0}})}
	_, err := Explore(net, alg, starts, ExploreOptions{
		Legitimate: func(*sim.Configuration) bool { return false },
	})
	if err == nil {
		t.Error("a diverging algorithm must be reported as an illegitimate cycle")
	}
}

func TestExploreDetectsIllegitimateTerminal(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 1}
	starts := []*sim.Configuration{sim.InitialConfiguration(alg, net)}
	_, err := Explore(net, alg, starts, ExploreOptions{
		// The only terminal configuration (all at cap) is declared
		// illegitimate, which Explore must flag.
		Legitimate: func(*sim.Configuration) bool { return false },
	})
	if err == nil {
		t.Error("an illegitimate terminal configuration must be reported")
	}
}

func TestExploreInvariantViolation(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 2}
	starts := []*sim.Configuration{sim.InitialConfiguration(alg, net)}
	_, err := Explore(net, alg, starts, ExploreOptions{
		Invariant: func(c *sim.Configuration) bool {
			return c.State(0).(counterState).V == 0
		},
	})
	if err == nil {
		t.Error("a reachable invariant violation must be reported")
	}
}

func TestExploreSelectionCapAndConfigCap(t *testing.T) {
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 4}
	starts := []*sim.Configuration{sim.InitialConfiguration(alg, net)}

	// A selection-size cap still explores (it restricts daemon choices).
	report, err := Explore(net, alg, starts, ExploreOptions{MaxSelectionSize: 1})
	if err != nil {
		t.Fatalf("capped exploration failed: %v", err)
	}
	if report.Configurations == 0 || report.Transitions == 0 {
		t.Error("capped exploration should still visit configurations")
	}

	// A tiny configuration cap marks the exploration incomplete and is never
	// overshot: the explored set stays within the cap even though a frontier
	// of successors was pending.
	report2, err := Explore(net, alg, starts, ExploreOptions{MaxConfigurations: 2})
	if err != nil {
		t.Fatalf("bounded exploration failed: %v", err)
	}
	if report2.Complete {
		t.Error("hitting the configuration cap must mark the exploration incomplete")
	}
	if report2.Configurations > 2 {
		t.Errorf("explored %d configurations, cap was 2", report2.Configurations)
	}
}

// TestExploreSequentialParallelIdentical asserts the level-parallel
// exploration produces reports (and error outcomes) bit-identical to the
// sequential one, on a convergent space, a diverging space, and a truncated
// space.
func TestExploreSequentialParallelIdentical(t *testing.T) {
	g := graph.Ring(5)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 3}
	var starts []*sim.Configuration
	for a := 0; a <= 2; a++ {
		states := make([]sim.State, g.N())
		for u := range states {
			states[u] = counterState{V: (a + u) % 3}
		}
		starts = append(starts, sim.NewConfiguration(states))
	}
	cases := []struct {
		name string
		opts ExploreOptions
	}{
		{"exact", ExploreOptions{Legitimate: allAtCap(3, g.N())}},
		{"capped-selections", ExploreOptions{Legitimate: allAtCap(3, g.N()), MaxSelectionSize: 2}},
		{"truncated", ExploreOptions{MaxConfigurations: 40}},
	}
	for _, tc := range cases {
		seq := tc.opts
		seq.Workers = 1
		par := tc.opts
		par.Workers = 8
		seqReport, seqErr := Explore(net, alg, starts, seq)
		parReport, parErr := Explore(net, alg, starts, par)
		if seqReport != parReport {
			t.Errorf("%s: parallel report %+v != sequential %+v", tc.name, parReport, seqReport)
		}
		if (seqErr == nil) != (parErr == nil) || (seqErr != nil && seqErr.Error() != parErr.Error()) {
			t.Errorf("%s: parallel error %v != sequential %v", tc.name, parErr, seqErr)
		}
	}

	// A diverging algorithm must yield the same error either way.
	flip := flipFlopAlg{}
	fstarts := []*sim.Configuration{sim.NewConfiguration([]sim.State{counterState{V: 0}, counterState{V: 0}})}
	fnet := sim.NewNetwork(graph.Path(2))
	never := func(*sim.Configuration) bool { return false }
	_, seqErr := Explore(fnet, flip, fstarts, ExploreOptions{Legitimate: never, Workers: 1})
	_, parErr := Explore(fnet, flip, fstarts, ExploreOptions{Legitimate: never, Workers: 4})
	if seqErr == nil || parErr == nil || seqErr.Error() != parErr.Error() {
		t.Errorf("divergence errors differ: sequential %v, parallel %v", seqErr, parErr)
	}
}

// collectSelections materialises forEachSelection's output for assertions.
func collectSelections(enabled []int, maxSize int) [][]int {
	var out [][]int
	forEachSelection(enabled, maxSize, nil, func(sel []int) {
		out = append(out, append([]int(nil), sel...))
	})
	return out
}

func TestForEachSelection(t *testing.T) {
	sels := collectSelections([]int{1, 2, 3}, 0)
	if len(sels) != 7 {
		t.Errorf("3 enabled processes have 7 non-empty subsets, got %d", len(sels))
	}
	capped := collectSelections([]int{1, 2, 3}, 1)
	if len(capped) != 3 {
		t.Errorf("size-1 selections of 3 processes: want 3, got %d", len(capped))
	}
	// Canonical order: by size, then lexicographic by positions.
	want := [][]int{{1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}}
	got := collectSelections([]int{1, 2, 3}, 2)
	if len(got) != len(want) {
		t.Fatalf("selections = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("selections = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("selections = %v, want %v", got, want)
			}
		}
	}
}

// TestForEachSelectionNoExponentialWork pins the tentpole property: a capped
// enumeration over a large enabled set emits exactly the capped subsets
// without iterating the 2^n masks (with 60 enabled processes the old
// mask-filter loop would spin through 2^60 iterations and never return).
func TestForEachSelectionNoExponentialWork(t *testing.T) {
	enabled := make([]int, 60)
	for i := range enabled {
		enabled[i] = i
	}
	count := 0
	forEachSelection(enabled, 2, nil, func(sel []int) { count++ })
	if want := 60 + 60*59/2; count != want {
		t.Errorf("capped enumeration emitted %d selections, want %d", count, want)
	}
}
