package checker

import (
	"math/rand"
	"testing"

	"sdr/internal/graph"
	"sdr/internal/sim"
)

// counterState and counterAlg form a tiny test algorithm: every process holds
// a counter; a process may increment while it is below the minimum of its
// neighbours plus one, up to a cap. From any configuration the algorithm
// converges to the all-cap configuration when the cap is reachable.
type counterState struct{ V int }

func (s counterState) Clone() sim.State { return s }
func (s counterState) Equal(o sim.State) bool {
	os, ok := o.(counterState)
	return ok && os == s
}
func (s counterState) String() string {
	digits := "0123456789"
	if s.V < 10 {
		return "v=" + string(digits[s.V])
	}
	return "v=" + string(digits[s.V/10]) + string(digits[s.V%10])
}

type counterAlg struct{ cap int }

func (a counterAlg) Name() string { return "counter" }
func (a counterAlg) InitialState(int, *sim.Network) sim.State {
	return counterState{V: 0}
}
func (a counterAlg) EnumerateStates(int, *sim.Network) []sim.State {
	out := make([]sim.State, 0, a.cap+1)
	for v := 0; v <= a.cap; v++ {
		out = append(out, counterState{V: v})
	}
	return out
}
func (a counterAlg) Rules() []sim.Rule {
	return []sim.Rule{{
		Name: "inc",
		Guard: func(v sim.View) bool {
			self := v.Self().(counterState).V
			if self >= a.cap {
				return false
			}
			return v.AllNeighbors(func(s sim.State) bool { return s.(counterState).V >= self })
		},
		Action: func(v sim.View) sim.State {
			return counterState{V: v.Self().(counterState).V + 1}
		},
	}}
}

var (
	_ sim.Algorithm  = counterAlg{}
	_ sim.Enumerable = counterAlg{}
)

// flipFlopAlg never converges: a single process toggles between two states.
type flipFlopAlg struct{}

func (flipFlopAlg) Name() string                             { return "flipflop" }
func (flipFlopAlg) InitialState(int, *sim.Network) sim.State { return counterState{V: 0} }
func (flipFlopAlg) EnumerateStates(int, *sim.Network) []sim.State {
	return []sim.State{counterState{V: 0}, counterState{V: 1}}
}
func (flipFlopAlg) Rules() []sim.Rule {
	return []sim.Rule{{
		Name:  "flip",
		Guard: func(sim.View) bool { return true },
		Action: func(v sim.View) sim.State {
			return counterState{V: 1 - v.Self().(counterState).V}
		},
	}}
}

var _ sim.Algorithm = flipFlopAlg{}

func allAtCap(capValue, n int) sim.Predicate {
	return func(c *sim.Configuration) bool {
		for u := 0; u < n; u++ {
			if c.State(u).(counterState).V != capValue {
				return false
			}
		}
		return true
	}
}

func TestCheckClosure(t *testing.T) {
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 3}

	// "All counters ≥ 0" is trivially closed.
	nonNegative := func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if c.State(u).(counterState).V < 0 {
				return false
			}
		}
		return true
	}
	start := sim.InitialConfiguration(alg, net)
	if err := CheckClosure(net, alg, sim.SynchronousDaemon{}, start, nonNegative, 1000); err != nil {
		t.Errorf("a trivially closed predicate was reported as violated: %v", err)
	}

	// "All counters = 0" is violated by the first step.
	allZero := allAtCap(0, g.N())
	if err := CheckClosure(net, alg, sim.SynchronousDaemon{}, start, allZero, 1000); err == nil {
		t.Error("a non-closed predicate must be reported")
	}

	// Starting outside the predicate is itself an error.
	if err := CheckClosure(net, alg, sim.SynchronousDaemon{}, start, allAtCap(3, g.N()), 1000); err == nil {
		t.Error("a start outside the predicate must be rejected")
	}
}

func TestCheckInvariant(t *testing.T) {
	g := graph.Path(3)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 2}
	start := sim.InitialConfiguration(alg, net)

	within := func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if v := c.State(u).(counterState).V; v < 0 || v > 2 {
				return false
			}
		}
		return true
	}
	if err := CheckInvariant(net, alg, sim.SynchronousDaemon{}, start, within, 1000); err != nil {
		t.Errorf("the cap invariant holds: %v", err)
	}
	below2 := func(c *sim.Configuration) bool {
		for u := 0; u < c.N(); u++ {
			if c.State(u).(counterState).V >= 2 {
				return false
			}
		}
		return true
	}
	if err := CheckInvariant(net, alg, sim.SynchronousDaemon{}, start, below2, 1000); err == nil {
		t.Error("an invariant that eventually breaks must be reported")
	}
	if err := CheckInvariant(net, alg, sim.SynchronousDaemon{}, start, allAtCap(2, g.N()), 1000); err == nil {
		t.Error("an invariant violated at the start must be reported")
	}
}

func TestConvergenceSample(t *testing.T) {
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 3}
	factory := sim.DaemonFactory{
		Name: "distributed-random",
		New: func(seed int64) sim.Daemon {
			return sim.NewDistributedRandomDaemon(rand.New(rand.NewSource(seed)), 0.5)
		},
	}
	buildStart := func(rng *rand.Rand) *sim.Configuration {
		states := make([]sim.State, g.N())
		for u := range states {
			states[u] = counterState{V: rng.Intn(3)}
		}
		return sim.NewConfiguration(states)
	}
	if err := ConvergenceSample(net, alg, factory, buildStart, allAtCap(3, g.N()), 5, 10_000, 1); err != nil {
		t.Errorf("the counter algorithm converges to the all-cap configuration: %v", err)
	}
	// An unreachable target must be reported.
	if err := ConvergenceSample(net, alg, factory, buildStart, allAtCap(9, g.N()), 2, 1_000, 1); err == nil {
		t.Error("an unreachable legitimate set must be reported")
	}
}

func TestExploreConvergence(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 2}

	var starts []*sim.Configuration
	for a := 0; a <= 2; a++ {
		for b := 0; b <= 2; b++ {
			starts = append(starts, sim.NewConfiguration([]sim.State{counterState{V: a}, counterState{V: b}}))
		}
	}
	report, err := Explore(net, alg, starts, ExploreOptions{
		Legitimate: allAtCap(2, g.N()),
		Invariant: func(c *sim.Configuration) bool {
			return c.State(0).(counterState).V <= 2 && c.State(1).(counterState).V <= 2
		},
		TerminalOK: allAtCap(2, g.N()),
	})
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	if !report.Complete {
		t.Error("the tiny state space must be explored completely")
	}
	if report.Configurations != 9 {
		t.Errorf("explored %d configurations, want 9", report.Configurations)
	}
	if report.TerminalConfigurations != 1 {
		t.Errorf("found %d terminal configurations, want exactly the all-cap one", report.TerminalConfigurations)
	}
	if report.LegitimateConfigurations != 1 {
		t.Errorf("found %d legitimate configurations, want 1", report.LegitimateConfigurations)
	}
}

func TestExploreDetectsIllegitimateCycle(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := flipFlopAlg{}
	starts := []*sim.Configuration{sim.NewConfiguration([]sim.State{counterState{V: 0}, counterState{V: 0}})}
	_, err := Explore(net, alg, starts, ExploreOptions{
		Legitimate: func(*sim.Configuration) bool { return false },
	})
	if err == nil {
		t.Error("a diverging algorithm must be reported as an illegitimate cycle")
	}
}

func TestExploreDetectsIllegitimateTerminal(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 1}
	starts := []*sim.Configuration{sim.InitialConfiguration(alg, net)}
	_, err := Explore(net, alg, starts, ExploreOptions{
		// The only terminal configuration (all at cap) is declared
		// illegitimate, which Explore must flag.
		Legitimate: func(*sim.Configuration) bool { return false },
	})
	if err == nil {
		t.Error("an illegitimate terminal configuration must be reported")
	}
}

func TestExploreInvariantViolation(t *testing.T) {
	g := graph.Path(2)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 2}
	starts := []*sim.Configuration{sim.InitialConfiguration(alg, net)}
	_, err := Explore(net, alg, starts, ExploreOptions{
		Invariant: func(c *sim.Configuration) bool {
			return c.State(0).(counterState).V == 0
		},
	})
	if err == nil {
		t.Error("a reachable invariant violation must be reported")
	}
}

func TestExploreSelectionCapAndConfigCap(t *testing.T) {
	g := graph.Ring(4)
	net := sim.NewNetwork(g)
	alg := counterAlg{cap: 4}
	starts := []*sim.Configuration{sim.InitialConfiguration(alg, net)}

	// A selection-size cap still explores (it restricts daemon choices).
	report, err := Explore(net, alg, starts, ExploreOptions{MaxSelectionSize: 1})
	if err != nil {
		t.Fatalf("capped exploration failed: %v", err)
	}
	if report.Configurations == 0 || report.Transitions == 0 {
		t.Error("capped exploration should still visit configurations")
	}

	// A tiny configuration cap marks the exploration incomplete.
	report2, err := Explore(net, alg, starts, ExploreOptions{MaxConfigurations: 2})
	if err != nil {
		t.Fatalf("bounded exploration failed: %v", err)
	}
	if report2.Complete {
		t.Error("hitting the configuration cap must mark the exploration incomplete")
	}
}

func TestEnumerateSelections(t *testing.T) {
	sels := enumerateSelections([]int{1, 2, 3}, 0)
	if len(sels) != 7 {
		t.Errorf("3 enabled processes have 7 non-empty subsets, got %d", len(sels))
	}
	capped := enumerateSelections([]int{1, 2, 3}, 1)
	if len(capped) != 3 {
		t.Errorf("size-1 selections of 3 processes: want 3, got %d", len(capped))
	}
}
