// Package checker provides the verification machinery used to validate the
// self-stabilization properties of the reproduced algorithms:
//
//   - closure checks: a predicate (e.g. the legitimate set) stays true along
//     executions that start inside it;
//   - invariant checks along sampled executions;
//   - bounded-exhaustive exploration of the reachable configuration space of
//     small networks under *every* daemon choice, which verifies convergence
//     (no cycle of illegitimate configurations, no illegitimate deadlock) in
//     the strongest possible way short of a formal proof.
package checker

import (
	"fmt"
	"math/rand"

	"sdr/internal/sim"
)

// CheckClosure verifies that pred is closed along an execution: starting
// from start (which must satisfy pred), it runs the algorithm under the
// daemon for at most maxSteps steps and returns an error if pred is ever
// violated.
func CheckClosure(net *sim.Network, alg sim.Algorithm, daemon sim.Daemon, start *sim.Configuration, pred sim.Predicate, maxSteps int) error {
	if !pred(start) {
		return fmt.Errorf("checker: starting configuration does not satisfy the predicate")
	}
	var violation error
	hook := func(info sim.StepInfo) {
		if violation == nil && !pred(info.After) {
			violation = fmt.Errorf("checker: predicate violated at step %d (activated %v)", info.Step, info.Activated)
		}
	}
	eng := sim.NewEngine(net, alg, daemon)
	eng.Run(start, sim.WithMaxSteps(maxSteps), sim.WithStepHook(hook))
	return violation
}

// CheckInvariant runs the algorithm from start and verifies that inv holds
// in every visited configuration (including the start).
func CheckInvariant(net *sim.Network, alg sim.Algorithm, daemon sim.Daemon, start *sim.Configuration, inv sim.Predicate, maxSteps int) error {
	if !inv(start) {
		return fmt.Errorf("checker: invariant violated in the starting configuration")
	}
	var violation error
	hook := func(info sim.StepInfo) {
		if violation == nil && !inv(info.After) {
			violation = fmt.Errorf("checker: invariant violated at step %d (activated %v)", info.Step, info.Activated)
		}
	}
	eng := sim.NewEngine(net, alg, daemon)
	eng.Run(start, sim.WithMaxSteps(maxSteps), sim.WithStepHook(hook))
	return violation
}

// ConvergenceSample checks convergence from many random starting
// configurations: for each sampled configuration the algorithm must reach a
// configuration satisfying legit within maxSteps steps under the daemon
// built by daemonFactory. It returns an error describing the first failure.
func ConvergenceSample(
	net *sim.Network,
	alg sim.Algorithm,
	daemonFactory sim.DaemonFactory,
	buildStart func(rng *rand.Rand) *sim.Configuration,
	legit sim.Predicate,
	trials, maxSteps int,
	seed int64,
) error {
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)))
		start := buildStart(rng)
		daemon := daemonFactory.New(seed + int64(trial))
		eng := sim.NewEngine(net, alg, daemon)
		res := eng.Run(start, sim.WithMaxSteps(maxSteps), sim.WithLegitimate(legit), sim.WithStopWhenLegitimate())
		if !res.LegitimateReached {
			return fmt.Errorf("checker: trial %d under daemon %s did not reach a legitimate configuration within %d steps (start %s)",
				trial, daemon.Name(), maxSteps, start)
		}
	}
	return nil
}
