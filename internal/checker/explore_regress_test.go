package checker_test

// Regression tests pinning the full ExploreReport of representative
// verifications of the paper's algorithms: U ∘ SDR (Theorems 5-7) on small
// unison rings and FGA ∘ SDR (Theorems 12-14) for two Section 6.1 alliance
// specs. The reports are exact — every counter is determined by the reachable
// transition system — so any change to the exploration semantics (selection
// enumeration order is allowed to change counts only by changing reachability,
// cap handling, predicate evaluation) shows up as a diff here. The external
// test package lets these tests drive checker.Explore through the scenario
// registry without an import cycle.

import (
	"testing"

	"sdr/internal/checker"
	"sdr/internal/scenario"
)

func resolveRegress(t *testing.T, alg string, n int) *scenario.Run {
	t.Helper()
	run, err := (scenario.Spec{
		Algorithm: alg,
		Topology:  "ring",
		N:         n,
		Daemon:    "synchronous", // irrelevant: Verify branches on every daemon choice
		Fault:     "random-all",
		Seed:      1,
	}).Resolve()
	if err != nil {
		t.Fatalf("resolve %s/ring n=%d: %v", alg, n, err)
	}
	return run
}

func TestExploreReportRegression(t *testing.T) {
	cases := []struct {
		name         string
		alg          string
		n, selection int
		want         checker.ExploreReport
	}{
		{
			// U∘SDR, K=5: non-silent, so no terminal configurations; every
			// branch under central-daemon choices converges to the legitimate
			// (normal) set.
			name: "unison-ring-4", alg: "unison", n: 4, selection: 1,
			want: checker.ExploreReport{
				Configurations: 360, Transitions: 702, Complete: true, Depth: 32,
				TerminalConfigurations: 0, LegitimateConfigurations: 95,
				CappedSelections: 258, DistinctLocalStates: 26,
			},
		},
		{
			name: "unison-ring-5", alg: "unison", n: 5, selection: 1,
			want: checker.ExploreReport{
				Configurations: 684, Transitions: 1755, Complete: true, Depth: 45,
				TerminalConfigurations: 0, LegitimateConfigurations: 306,
				CappedSelections: 618, DistinctLocalStates: 27,
			},
		},
		{
			// FGA∘SDR for the dominating-set spec, exact selections (every
			// non-empty subset of the enabled set = the fully distributed
			// unfair daemon): silent, exactly one reachable terminal
			// configuration, and no capped selections.
			name: "dominating-set-ring-5-exact", alg: "dominating-set", n: 5, selection: 0,
			want: checker.ExploreReport{
				Configurations: 497, Transitions: 2684, Complete: true, Depth: 14,
				TerminalConfigurations: 1, LegitimateConfigurations: 148,
				CappedSelections: 0, DistinctLocalStates: 35,
			},
		},
		{
			name: "global-defensive-alliance-ring-5", alg: "global-defensive-alliance", n: 5, selection: 1,
			want: checker.ExploreReport{
				Configurations: 480, Transitions: 1184, Complete: true, Depth: 20,
				TerminalConfigurations: 1, LegitimateConfigurations: 117,
				CappedSelections: 426, DistinctLocalStates: 27,
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := resolveRegress(t, tc.alg, tc.n)
			for _, workers := range []int{1, 6} {
				got, err := run.Verify(scenario.VerifyOptions{
					Starts:           4,
					MaxSelectionSize: tc.selection,
					Workers:          workers,
				})
				if err != nil {
					t.Fatalf("workers=%d: verification failed: %v", workers, err)
				}
				if got != tc.want {
					t.Errorf("workers=%d: report = %+v, want %+v", workers, got, tc.want)
				}
			}
		})
	}
}

// TestExploreProgressReporting asserts the per-level progress stream is
// monotone and consistent with the final report.
func TestExploreProgressReporting(t *testing.T) {
	run := resolveRegress(t, "unison", 4)
	var levels []checker.ExploreProgress
	report, err := run.Verify(scenario.VerifyOptions{
		Starts:           2,
		MaxSelectionSize: 1,
		Progress:         func(p checker.ExploreProgress) { levels = append(levels, p) },
	})
	if err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if len(levels) != report.Depth {
		t.Fatalf("%d progress callbacks for depth %d", len(levels), report.Depth)
	}
	for i := 1; i < len(levels); i++ {
		prev, cur := levels[i-1], levels[i]
		if cur.Depth != prev.Depth+1 || cur.Configurations < prev.Configurations || cur.Transitions < prev.Transitions {
			t.Fatalf("progress not monotone at level %d: %+v -> %+v", i, prev, cur)
		}
	}
	last := levels[len(levels)-1]
	if last.Configurations != report.Configurations || last.Transitions != report.Transitions || last.Frontier != 0 {
		t.Errorf("final progress %+v inconsistent with report %+v", last, report)
	}
}
