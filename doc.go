// Package sdr is the root of a from-scratch Go reproduction of
// "Self-Stabilizing Distributed Cooperative Reset" (Stéphane Devismes and
// Colette Johnen, ICDCS 2019).
//
// The library lives under internal/:
//
//   - internal/graph    — the network model and topology generators, stored
//     in a compact CSR adjacency layout (Graph.CSR) with allocation-free
//     Degree/Neighbor iteration and a mutable overlay for churn edits;
//   - internal/sim      — the locally shared memory model with composite
//     atomicity, daemons, move/round accounting, the shared
//     neighbourhood→enabled-rules memoization layer (MemoEvaluator,
//     bit-identical to direct evaluation, with hit-rate telemetry), and the
//     sharded engine (WithShards: shard-parallel steps over contiguous node
//     ranges, bit-identical to the sequential engine for the synchronous
//     daemon, a documented locally-central daemon family otherwise);
//   - internal/core     — Algorithm SDR (the paper's contribution) and the
//     composition operator I ∘ SDR;
//   - internal/unison   — Algorithm U, U ∘ SDR, and the Boulinier-Petit-
//     Villain baseline (Section 5);
//   - internal/alliance — Algorithm FGA, FGA ∘ SDR, and the (f,g)-alliance
//     verifiers (Section 6);
//   - internal/checker  — closure/convergence checkers and the parallel
//     bounded-exhaustive state-space exploration behind the -verify modes
//     (model checking convergence under every daemon choice on small n);
//   - internal/faults   — transient-fault injection;
//   - internal/churn    — seeded mid-run perturbation schedules (state
//     corruption, node crashes, edge churn, partitions) and the injector
//     behind scenario Spec.Churn, with per-event re-stabilization metrics;
//   - internal/scenario — the declarative experiment layer: named registries
//     for algorithms, topologies, daemons and fault models, the Spec type
//     that resolves a description into a ready-to-run engine, Sweep
//     cross-products, and Run.Verify, the exhaustive-certification
//     counterpart of Run.Execute;
//   - internal/trace    — execution recording and export;
//   - internal/stats    — summaries, percentiles, Student-t confidence
//     intervals and growth fits for the reports;
//   - internal/bench    — the experiment harness (E1-E10, A1-A3), built on
//     scenario sweeps;
//   - internal/campaign — the experiment frame: streaming multi-trial
//     campaigns over scenario sweeps with a resumable JSONL sink, adaptive
//     trial counts, versioned baseline snapshots and the noise-aware
//     baseline comparison behind the CI regression gate
//     (sdrbench -campaign / -compare);
//   - internal/obs      — the zero-dependency observability core: atomic
//     counters/gauges/histograms with Prometheus text exposition (the sdrd
//     /metrics endpoint) and the sampled engine phase profiler behind
//     sim.WithProfiler and the -profile-steps modes;
//   - internal/server   — the sdrd simulation service: an HTTP+JSON API over
//     the campaign stream core with content-hash deduplicated, backpressured
//     job execution, live-followable record streams byte-identical to the
//     offline campaign files, structured request/job-lifecycle logs, a
//     Prometheus /metrics exposition, and graceful record-boundary drain.
//
// The executables cmd/sdrsim and cmd/sdrbench, the long-running service
// daemon cmd/sdrd (with its load generator cmd/sdrload), and the runnable
// examples under examples/ are the entry points; all of them construct their
// runs through internal/scenario Specs, so `sdrsim -list` shows every
// combination they can run (`-list -json` for the machine-readable dump the
// service also serves at /v1/registry). bench_test.go at this root exposes one testing.B benchmark per
// experiment table. See README.md for the quickstart, the scenario sweeps and
// benchmark usage.
package sdr
