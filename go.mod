module sdr

go 1.24
